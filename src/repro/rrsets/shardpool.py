"""Persistent sharded worker runtime for RR-set generation and coverage.

The per-call fan-out (:mod:`repro.rrsets.fanout`) pays ``Pool`` spawn, a
full graph pickle, and a sampler-table rebuild on **every** generate call,
and merges every shard back into one parent-resident pool.  A
:class:`ShardPool` removes all three costs:

* **Spawn once** — workers are long-lived processes created at pool
  construction; each attaches the graph from one shared-memory block
  (:mod:`repro.graphs.shared`) and keeps its generator — and therefore the
  per-graph sampler tables cached on the attached graph — resident across
  requests.
* **Shard-resident pools** — each worker permanently owns its shard of
  every role's RR pool (an ordinary :class:`~repro.rrsets.collection
  .RRCollection`) plus the lazily built inverted index.  Nothing is merged
  back to the parent; coverage runs *where the data lives* and only
  per-node gain vectors travel.
* **Spill** — with a ``spill_dir``, worker shards can spill their pools to
  disk-backed memory maps (:meth:`RRCollection.spill_to`) and the worker
  checkpoints its state through the :class:`~repro.runtime.checkpoint
  .CheckpointStore` after mutating commands.

**Command pipelining.**  Every message carries a per-worker monotone
*tag* — parent to worker ``(cmd, tag, payload)``, worker to parent
``(tag, status, reply)`` — so the parent can issue a command (notably
``generate``) and collect its reply later while sending other commands in
between.  Workers *interleave*: between generation chunks a worker polls
its pipe and serves non-mutating commands (coverage, selection,
sketches, stats) inline, which is what lets the parent run a greedy
selection over round ``i``'s prefix while the same workers generate round
``i+1``'s sets.  Mutating commands and ``shutdown`` that arrive during a
generate are deferred FIFO and execute after it, preserving journal
order.  A generate stages its chunks privately and installs them with
one ``add_batch`` at the end, so interleaved coverage reads see a stable
pool (no per-chunk inverted-index rebuilds) and a mid-generate crash
leaves the pool untouched.  An in-flight generate can be *cancelled* at
a chunk boundary (``generate_cancel``); the parent then truncates the
journaled request to the delivered count, which keeps crash replay
bit-identical because chunk sequences are prefix-stable.

**Determinism and crash recovery.**  Every mutating command carries a
monotone per-worker sequence number and (for generation) a self-contained
``SeedSequence`` spec, so a worker's entire pool state is a pure function
of the command journal the parent keeps.  When a worker dies the parent
drains the dead pipe (already-sent replies are still readable and are
stashed by tag), respawns the worker, restores the newest checkpoint (if
any), replays the journal suffix — bit-identical, because requests are
independently seeded — caching each replayed reply by sequence number,
and re-establishes any in-progress selection state.  A pending reply is
therefore always recoverable: checkpoints are taken only *after* a reply
ships, so a lost reply is either in the drained pipe or owned by a
replayed command.

**Journal compaction.**  Once a worker's checkpoint covers a sequence
number, the journal prefix up to it can never be replayed again (recovery
resumes from the checkpoint); the parent truncates it when the journal
exceeds ``journal_compact_threshold`` entries, so long sessions stop
growing journals unboundedly.  Checkpoint writes are atomic
(``os.replace``), so the newest loadable checkpoint always covers the
compacted prefix.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.shared import unlink_shared
from repro.rrsets.collection import RRCollection
from repro.utils.exceptions import ReproError


class ShardPoolError(ReproError):
    """A shard worker reported an error or could not be recovered."""


#: recv/send failure modes that mean "the worker process is gone".
_LINK_ERRORS = (EOFError, BrokenPipeError, ConnectionResetError, OSError)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

class _RoleState:
    """One role's resident shard inside a worker: pool + generator.

    ``journal`` records the RNG state of every generation unit (see
    :meth:`RRCollection.extend`); ``repair`` replays it so a graph delta
    resamples exactly the invalidated sets.
    """

    __slots__ = ("pool", "generator", "journal")

    def __init__(self, pool: RRCollection, generator) -> None:
        self.pool = pool
        self.generator = generator
        self.journal: list = []


class _Selection:
    """Worker-side state of one in-progress scatter-gather selection."""

    __slots__ = ("limit", "covered")

    def __init__(self, limit: int) -> None:
        self.limit = int(limit)
        self.covered = np.zeros(self.limit, dtype=bool)


class _ShardWorker:
    """State machine executed by one worker process."""

    def __init__(
        self,
        rank: int,
        graph: CSRGraph,
        spill_dir: Optional[str],
        checkpoint_every: int,
    ) -> None:
        self.rank = rank
        self.graph = graph
        self.spill_dir = spill_dir
        self.checkpoint_every = int(checkpoint_every)
        self.roles: Dict[str, _RoleState] = {}
        self.selections: Dict[str, _Selection] = {}
        self.seq = 0
        #: sequence number covered by the newest on-disk checkpoint; the
        #: parent compacts its replay journal up to this point.
        self.checkpoint_seq = 0
        self.last_reply: Optional[Tuple[int, Any]] = None
        self.crash_next = False
        self.spilled_roles: set = set()
        #: wire payloads of every graph delta applied, in order.  A respawn
        #: attaches the *original* shared-memory graph, so the checkpoint
        #: carries these and :meth:`restore` re-applies them before any
        #: journal replay touches the graph.
        self.deltas: List[dict] = []
        self._dirty = False
        #: the parent pipe, for mid-generate interleaving.
        self.conn: Any = None
        #: commands deferred during a generate (mutations + shutdown),
        #: drained by the main loop in arrival order.
        self.deferred: deque = deque()
        self.active_generate_seq: Optional[int] = None
        self.cancel_generate = False

    # -- durability ----------------------------------------------------
    def _store(self):
        from repro.runtime.checkpoint import CheckpointStore

        if self.spill_dir is None:
            return None
        path = os.path.join(self.spill_dir, f"shard{self.rank}.ckpt.npz")
        return CheckpointStore(path)

    def restore(self) -> None:
        """Reload the newest checkpoint (respawn path); best effort."""
        from repro.runtime.checkpoint import counters_from_dict
        from repro.utils.exceptions import CheckpointError

        store = self._store()
        if store is None or not store.exists():
            return
        try:
            meta, pools = store.load()
        except CheckpointError:
            # A torn checkpoint is refused, never half-loaded: replay from
            # the journal origin reproduces the same state.
            return
        self.seq = int(meta["seq"])
        self.checkpoint_seq = self.seq
        # Graph first: role generators built below derive caches from it.
        from repro.graphs.dynamic import GraphDelta

        for payload in meta.get("deltas", []):
            self.graph.apply_delta(GraphDelta.from_payload(payload))
            self.deltas.append(payload)
        for role, payload in meta["roles"].items():
            state = self._role(
                role, _import_class(payload["generator_cls"]), None, 1
            )
            state.pool = pools[role]
            state.generator.counters = counters_from_dict(payload["counters"])
            state.generator._reported_edges = 0
            state.journal = list(payload.get("journal", []))
        for role in meta.get("spilled", []):
            self.spilled_roles.add(role)
            self._spill_role(role)

    def discard_checkpoint(self) -> None:
        """Delete any checkpoint left in ``spill_dir`` by a prior process.

        A *fresh* pool starts from an empty journal, so a checkpoint found
        at spawn time can only belong to an earlier pool that shared the
        directory.  Adopting it would leave ``seq`` ahead of the new
        parent's journal and every journaled command would look like a
        replay.
        """
        store = self._store()
        if store is not None:
            store.clear()

    def checkpoint(self) -> None:
        from repro.runtime.checkpoint import counters_to_dict

        store = self._store()
        if store is None or self.checkpoint_every <= 0:
            return
        if self.seq % self.checkpoint_every != 0:
            return
        meta = {
            "seq": self.seq,
            "spilled": sorted(self.spilled_roles),
            "deltas": list(self.deltas),
            "roles": {
                role: {
                    "generator_cls": _class_path(type(state.generator)),
                    "counters": counters_to_dict(state.generator.counters),
                    "journal": list(state.journal),
                }
                for role, state in self.roles.items()
            },
        }
        store.save(meta, {role: s.pool for role, s in self.roles.items()})
        self.checkpoint_seq = self.seq

    # -- role plumbing -------------------------------------------------
    def _role(
        self, role: str, generator_cls, batched_mode, batch_size
    ) -> _RoleState:
        state = self.roles.get(role)
        if state is None:
            state = _RoleState(
                RRCollection(self.graph.n), generator_cls(self.graph)
            )
            self.roles[role] = state
        gen = state.generator
        if batched_mode is not None:
            gen.batched_mode = batched_mode
        gen.batch_size = int(batch_size)
        return state

    def _view(self, role: str, limit: int):
        state = self.roles.get(role)
        pool = state.pool if state is not None else RRCollection(self.graph.n)
        return pool.prefix(min(int(limit), pool.num_rr))

    # -- command dispatch ----------------------------------------------
    def dispatch(self, cmd: str, payload: Dict[str, Any]):
        handler = getattr(self, f"_cmd_{cmd}", None)
        if handler is None:
            raise ShardPoolError(f"unknown shard command {cmd!r}")
        mutating = cmd in _MUTATING_COMMANDS
        if mutating:
            seq = int(payload["seq"])
            if seq < self.seq:
                # A retried send reached a command this worker already
                # applied: answer idempotently from the cached reply.
                # Checkpoints are taken *after* the reply ships, so only
                # the immediately preceding command can ever be re-sent —
                # anything else means the journal and worker disagree.
                if self.last_reply is not None and self.last_reply[0] == seq:
                    return self.last_reply[1]
                raise ShardPoolError(
                    f"shard {self.rank}: replayed seq {seq} predates worker "
                    f"seq {self.seq} and no cached reply exists (stale "
                    "checkpoint or journal mismatch)"
                )
        reply = handler(payload)
        if mutating:
            self.seq += 1
            self.last_reply = (int(payload["seq"]), reply)
            self._dirty = True
        return reply

    def maybe_checkpoint(self) -> None:
        """Checkpoint after the reply has shipped, if state changed.

        Ordering matters: persisting *before* replying would let a crash
        land between the two, leaving a checkpoint whose sequence number
        covers a reply the parent never received — replay would then skip
        the command instead of re-answering it.
        """
        if self._dirty:
            self._dirty = False
            self.checkpoint()

    def _poll_commands(self) -> None:
        """Serve commands that arrived while a generate is running.

        Non-mutating commands (coverage, selection, cancellation, stats)
        run inline against the stable pre-generate pool and reply
        immediately — this is the worker half of generation/selection
        overlap.  Mutating commands and ``shutdown`` are deferred FIFO;
        once one is deferred, everything behind it defers too, so the
        order the parent journaled is the order state advances.
        """
        conn = self.conn
        if conn is None:
            return
        try:
            while conn.poll(0):
                cmd, tag, payload = conn.recv()
                if (
                    cmd == "shutdown"
                    or cmd in _MUTATING_COMMANDS
                    or self.deferred
                ):
                    self.deferred.append((cmd, tag, payload))
                    continue
                try:
                    reply = self.dispatch(cmd, payload)
                except ShardPoolError as exc:
                    conn.send((tag, "error", str(exc)))
                    continue
                except Exception as exc:
                    conn.send((tag, "error", f"{type(exc).__name__}: {exc}"))
                    continue
                conn.send((tag, "ok", reply))
        except _LINK_ERRORS:  # parent gone: finish quietly, exit in main loop
            self.conn = None

    def _cmd_hello(self, payload):
        return {
            "seq": self.seq,
            "roles": {role: s.pool.num_rr for role, s in self.roles.items()},
        }

    def _cmd_checkpoint_seq(self, payload):
        return {"seq": int(self.checkpoint_seq)}

    def _cmd_generate(self, payload):
        from repro.observability.registry import MetricsRegistry

        state = self._role(
            payload["role"],
            payload["generator_cls"],
            payload.get("batched_mode"),
            payload.get("batch_size", 1),
        )
        gen = state.generator
        gen.metrics = MetricsRegistry() if payload.get("want_metrics") else None
        before = _counter_tuple(gen.counters)
        rng = np.random.default_rng(payload["seed"])
        stop_mask = payload.get("stop_mask")
        count = int(payload["count"])
        batch = max(1, int(payload.get("batch_size", 1)))
        self.active_generate_seq = int(payload["seq"])
        self.cancel_generate = False
        node_chunks: List[np.ndarray] = []
        sizes_chunks: List[np.ndarray] = []
        entries: List[dict] = []
        base = state.pool.num_rr
        produced = 0
        remaining = count
        midpoint = count // 2
        try:
            while remaining > 0:
                b = min(batch, remaining)
                rng_state = rng.bit_generator.state
                nodes, sizes = gen.generate_batch(rng, b, stop_mask=stop_mask)
                node_chunks.append(nodes)
                sizes_chunks.append(sizes)
                entries.append({
                    "start": base + produced,
                    "count": int(len(sizes)),
                    "requested": int(b),
                    "mode": "batch",
                    "state": rng_state,
                })
                produced += len(sizes)
                remaining -= len(sizes)
                if self.crash_next and count - remaining >= midpoint:
                    # Chaos hook: die mid-generate with chunks staged but
                    # uncommitted and no reply sent — exactly the failure
                    # recovery must absorb.  ``os._exit`` skips every
                    # cleanup path.
                    os._exit(17)
                self._poll_commands()
                if self.cancel_generate:
                    break
        finally:
            self.active_generate_seq = None
            self.cancel_generate = False
        # Stage-then-commit: one add_batch keeps interleaved coverage
        # reads on a stable pool and makes a mid-generate crash leave the
        # pool untouched (replay re-runs the whole request).
        if produced:
            state.pool.add_batch(
                np.concatenate(node_chunks), np.concatenate(sizes_chunks)
            )
            state.journal.extend(entries)
        sizes = (
            np.concatenate(sizes_chunks)
            if sizes_chunks
            else np.empty(0, dtype=np.int64)
        )
        after = _counter_tuple(gen.counters)
        delta = tuple(a - b for a, b in zip(after, before))
        metrics_payload = (
            gen.metrics.snapshot() if gen.metrics is not None else None
        )
        gen.metrics = None
        return {
            "sizes": sizes,
            "totals": delta,
            "metrics": metrics_payload,
            "num_rr": state.pool.num_rr,
            "delivered": int(produced),
        }

    def _cmd_generate_cancel(self, payload):
        armed = (
            self.active_generate_seq is not None
            and self.active_generate_seq == int(payload["target_seq"])
        )
        if armed:
            self.cancel_generate = True
        return {"cancelled": armed}

    def _cmd_adopt(self, payload):
        state = self._role(payload["role"], payload["generator_cls"], None, 1)
        nodes = payload["nodes"]
        sizes = payload["sizes"]
        if len(sizes):
            state.pool.add_batch(nodes, sizes)
        return {"num_rr": state.pool.num_rr}

    def _cmd_reset_role(self, payload):
        state = self.roles.get(payload["role"])
        if state is not None:
            state.pool = RRCollection(self.graph.n)
            state.journal = []
        self.spilled_roles.discard(payload["role"])
        return {"num_rr": 0}

    def _cmd_apply_delta(self, payload):
        from repro.graphs.dynamic import GraphDelta

        delta = GraphDelta.from_payload(payload["delta"])
        touched = self.graph.apply_delta(delta)
        self.deltas.append(payload["delta"])
        # Resident generators hold construction-time caches derived from
        # the pre-delta graph (e.g. SUBSIM's per-node rate arrays): rebuild
        # each one in place, carrying its cumulative counters.
        for state in self.roles.values():
            old = state.generator
            gen = type(old)(self.graph)
            gen.counters = old.counters
            gen.batched_mode = old.batched_mode
            gen.batch_size = old.batch_size
            state.generator = gen
        return {
            "touched": int(len(touched)),
            "delta_epoch": int(self.graph.delta_epoch),
        }

    def _cmd_repair(self, payload):
        from repro.rrsets.bank import REPAIR_KEY, replay_units

        role = payload["role"]
        state = self.roles.get(role)
        if state is None or state.pool.num_rr == 0:
            return {"num_dirty": 0, "num_rr": 0, "num_resampled": 0}
        pool = state.pool
        dirty = pool.sets_touching(payload["nodes"])
        num_resampled = 0
        if len(dirty):
            repair_gen = type(state.generator)(self.graph)
            repair_gen.batched_mode = state.generator.batched_mode
            ids, chunks, sizes, uncovered = replay_units(
                state.journal, dirty, repair_gen
            )
            # Fresh per-set fallback seeds for dirty sets the journal
            # cannot replay (adopted sets, pre-journal checkpoints); the
            # rank is in the spawn key so shards never share a stream.
            for local_id in uncovered:
                seq = np.random.SeedSequence(
                    payload["entropy"],
                    spawn_key=(
                        payload["role_key"],
                        REPAIR_KEY,
                        payload["epoch"],
                        self.rank,
                        int(local_id),
                    ),
                )
                rr = np.asarray(
                    repair_gen.generate(np.random.default_rng(seq)),
                    dtype=np.int64,
                )
                ids.append(int(local_id))
                chunks.append(rr)
                sizes.append(len(rr))
            order = np.argsort(np.asarray(ids, dtype=np.int64))
            flat = np.concatenate(chunks)
            sizes_arr = np.asarray(sizes, dtype=np.int64)
            bounds = np.concatenate(([0], np.cumsum(sizes_arr)))
            pool.replace_sets(
                np.asarray(ids, dtype=np.int64)[order],
                np.concatenate(
                    [flat[bounds[i]:bounds[i + 1]] for i in order]
                ),
                sizes_arr[order],
            )
            num_resampled = len(ids)
            # replace_sets promotes a spilled pool back to RAM.
            self.spilled_roles.discard(role)
        return {
            "num_dirty": int(len(dirty)),
            "num_rr": pool.num_rr,
            "num_resampled": int(num_resampled),
        }

    def _spill_role(self, role: str) -> int:
        state = self.roles.get(role)
        if state is None or self.spill_dir is None:
            return 0
        safe = role.replace("/", "_")
        state.pool.spill_to(
            os.path.join(self.spill_dir, f"shard{self.rank}.{safe}")
        )
        return state.pool.nbytes()

    def _cmd_spill(self, payload):
        if self.spill_dir is None:
            raise ShardPoolError("spill requested but the pool has no spill_dir")
        roles = (
            [payload["role"]] if payload.get("role") else list(self.roles)
        )
        resident = {}
        for role in roles:
            resident[role] = self._spill_role(role)
            self.spilled_roles.add(role)
        return {"resident_bytes": resident}

    def _cmd_stats(self, payload):
        return {
            role: {
                "num_rr": s.pool.num_rr,
                "nbytes": s.pool.nbytes(),
                "spilled": s.pool.is_spilled,
                "realloc_count": s.pool.realloc_count,
            }
            for role, s in self.roles.items()
        }

    def _cmd_crash_next(self, payload):
        self.crash_next = True
        return {}

    def _cmd_coverage_counts(self, payload):
        view = self._view(payload["role"], payload["limit"])
        return {"counts": view.coverage_counts(), "num_rr": view.num_rr}

    def _cmd_coverage(self, payload):
        view = self._view(payload["role"], payload["limit"])
        return {"covered": view.coverage(payload["seeds"])}

    def _cmd_per_set_sums(self, payload):
        view = self._view(payload["role"], payload["limit"])
        return {"sums": view.per_set_sums(payload["values"])}

    def _cmd_sketch_registers(self, payload):
        # Non-mutating: build a coverage sketch over this shard's prefix.
        # Ids are remapped to ``local_id * shards + rank`` — bijective
        # across the partition, so the coordinator's register-max union
        # counts the global pool exactly as if it were one collection.
        from repro.coverage.sketch import CoverageSketch

        state = self.roles.get(payload["role"])
        pool = state.pool if state is not None else RRCollection(self.graph.n)
        limit = min(int(payload["limit"]), pool.num_rr)
        sketch = CoverageSketch(
            self.graph.n,
            precision=int(payload["precision"]),
            hash_seed=int(payload["hash_seed"]),
        )
        sketch.ingest_range(
            pool,
            0,
            limit,
            id_stride=int(payload["shards"]),
            id_offset=self.rank,
        )
        return {"registers": sketch.registers, "num_rr": limit}

    def _cmd_select_begin(self, payload):
        self.selections[payload["role"]] = _Selection(payload["limit"])
        return {}

    def _cmd_select_mark(self, payload):
        role = payload["role"]
        sel = self.selections[role]
        view = self._view(role, sel.limit)
        containing = view.rrs_containing(int(payload["node"]))
        newly = containing[~sel.covered[containing]]
        sel.covered[newly] = True
        reply: Dict[str, Any] = {"newly": len(newly)}
        if payload.get("want_decrements"):
            reply["members"] = view.nodes_of_sets(newly)
        return reply

    def _cmd_select_uncovered(self, payload):
        role = payload["role"]
        sel = self.selections[role]
        view = self._view(role, sel.limit)
        return {
            "counts": view.uncovered_counts(payload["nodes"], sel.covered)
        }

    def _cmd_select_covered(self, payload):
        return {"covered": self.selections[payload["role"]].covered}

    def _cmd_select_end(self, payload):
        self.selections.pop(payload["role"], None)
        return {}


#: commands that advance worker state; they carry ``seq``, are journaled by
#: the parent, and are replayed verbatim after a crash.
_MUTATING_COMMANDS = frozenset(
    {"generate", "adopt", "reset_role", "spill", "apply_delta", "repair"}
)


def _counter_tuple(c) -> Tuple[int, int, int, int, int]:
    return (
        c.edges_examined, c.rng_draws, c.nodes_added,
        c.sets_generated, c.sentinel_hits,
    )


def _class_path(cls) -> str:
    return f"{cls.__module__}:{cls.__qualname__}"


def _import_class(path: str):
    import importlib

    module, _, name = path.partition(":")
    obj = importlib.import_module(module)
    for part in name.split("."):
        obj = getattr(obj, part)
    return obj


def _shard_worker_main(rank, conn, handle, spill_dir, checkpoint_every,
                       restore):
    """Worker process entry point: attach the graph, serve commands.

    ``restore`` is True only on a crash-recovery respawn: the checkpoint
    then belongs to this pool and resuming from it shortens journal
    replay.  On a fresh spawn any checkpoint in ``spill_dir`` is a
    leftover from a *previous* process and is discarded instead — the new
    pool's journal starts at zero and must stay in lockstep with ``seq``.
    """
    graph = CSRGraph.from_shared(handle)
    worker = _ShardWorker(rank, graph, spill_dir, checkpoint_every)
    worker.conn = conn
    if restore:
        worker.restore()
    else:
        worker.discard_checkpoint()
    while True:
        if worker.deferred:
            cmd, tag, payload = worker.deferred.popleft()
        else:
            try:
                cmd, tag, payload = conn.recv()
            except _LINK_ERRORS:  # parent is gone
                break
        if cmd == "shutdown":
            try:
                conn.send((tag, "ok", None))
            except _LINK_ERRORS:  # pragma: no cover - teardown race
                pass
            break
        try:
            reply = worker.dispatch(cmd, payload)
        except ShardPoolError as exc:
            conn.send((tag, "error", str(exc)))
            continue
        except Exception as exc:  # surface, don't die silently
            conn.send((tag, "error", f"{type(exc).__name__}: {exc}"))
            continue
        conn.send((tag, "ok", reply))
        worker.maybe_checkpoint()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

class PendingGenerate:
    """Handle for a generate broadcast whose replies are collected later.

    Issued by :meth:`ShardPool.generate_async`.  :meth:`collect` gathers
    the per-rank replies in rank order (recovering crashed workers along
    the way) and retroactively truncates the journaled request counts for
    cancelled partial deliveries; :meth:`cancel` asks every worker to
    stop its in-flight request at the next chunk boundary.
    """

    def __init__(self, pool, tags, seqs, epochs, payloads) -> None:
        self._pool = pool
        self._tags = tags
        self._seqs = seqs
        self._epochs = epochs
        self._payloads = payloads
        self._cancel_tags: List[Optional[int]] = [None] * pool.shards
        self._replies: Optional[List[dict]] = None

    def cancel(self) -> None:
        """Best-effort: stop each in-flight request at a chunk boundary."""
        if self._replies is not None:
            return
        pool = self._pool
        for rank in range(pool.shards):
            if self._cancel_tags[rank] is not None:
                continue
            if self._epochs[rank] != pool._epochs[rank]:
                continue  # worker respawned: replay already re-ran it
            try:
                self._cancel_tags[rank] = pool._send(
                    rank, "generate_cancel",
                    {"target_seq": self._seqs[rank]},
                )
            except _LINK_ERRORS:
                pass  # collection recovers the rank

    def collect(self) -> List[dict]:
        """Per-rank generate replies in rank order (blocking)."""
        if self._replies is not None:
            return self._replies
        pool = self._pool
        replies: List[dict] = []
        for rank in range(pool.shards):
            reply = pool._finish_request(
                rank,
                self._tags[rank],
                self._seqs[rank],
                self._epochs[rank],
                "generate",
                self._payloads[rank],
            )
            self._absorb_cancel(rank)
            delivered = int(reply.get("delivered", len(reply["sizes"])))
            entry = pool._journal_payload(rank, self._seqs[rank])
            if entry is not None and delivered < int(entry["count"]):
                # Chunk-boundary truncation: replaying the request with
                # the delivered count regenerates the identical chunk
                # prefix, so recovery stays bit-identical.
                entry["count"] = delivered
            replies.append(reply)
            pool._maybe_compact(rank)
        self._replies = replies
        return replies

    def _absorb_cancel(self, rank: int) -> None:
        tag = self._cancel_tags[rank]
        if tag is None:
            return
        pool = self._pool
        if pool._stash[rank].pop(tag, None) is not None:
            return
        conn = pool._conns[rank]
        try:
            while conn is not None and conn.poll(0):
                rtag, status, reply = conn.recv()
                if rtag == tag:
                    return
                pool._stash[rank][rtag] = (status, reply)
        except _LINK_ERRORS:
            pass
        # Not arrived yet (cancel raced past the generate): drop it when
        # it eventually shows up instead of stashing it forever.
        pool._discard_tags[rank].add(tag)


class ShardPool:
    """A fixed set of long-lived worker processes owning RR-pool shards.

    The pool is role-multiplexed: any number of RR banks (``"opimc.r1"``,
    ``"sentinel.r2"``, ...) share the same workers, each role owning one
    resident :class:`RRCollection` shard per worker.  Communication is
    tagged request/reply over per-worker pipes; most calls gather replies
    in rank order immediately, while :meth:`generate_async` defers
    collection so generation overlaps parent-side work.

    ``spill_dir`` enables spill-to-disk for cold shards, the per-worker
    checkpoint that shortens crash-recovery replay, and journal
    compaction; without it, recovery replays the full journal (still
    bit-identical — just slower).
    """

    def __init__(
        self,
        graph: CSRGraph,
        shards: int,
        *,
        spill_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        mp_context: Optional[str] = None,
        metrics=None,
        journal_compact_threshold: int = 64,
    ) -> None:
        if shards < 1:
            raise ShardPoolError(f"shards must be >= 1, got {shards}")
        self.graph = graph
        self.shards = int(shards)
        self.spill_dir = os.fspath(spill_dir) if spill_dir is not None else None
        if self.spill_dir is not None:
            os.makedirs(self.spill_dir, exist_ok=True)
        self.checkpoint_every = int(checkpoint_every)
        self.journal_compact_threshold = int(journal_compact_threshold)
        self.metrics = metrics
        self._ctx = multiprocessing.get_context(mp_context)
        self._handle, self._shm = graph.to_shared()
        self._conns: List[Any] = [None] * self.shards
        self._procs: List[Any] = [None] * self.shards
        self._journal: List[List[Tuple[str, dict]]] = [
            [] for _ in range(self.shards)
        ]
        #: absolute seq of each rank's first retained journal entry
        #: (compaction trims the prefix a shipped checkpoint covers).
        self._journal_base: List[int] = [0] * self.shards
        #: per-rank monotone message tags (never reset, even on respawn,
        #: so stashed replies from a dead worker stay unambiguous).
        self._tags: List[int] = [0] * self.shards
        #: out-of-order replies keyed by tag, per rank.
        self._stash: List[Dict[int, Tuple[str, Any]]] = [
            {} for _ in range(self.shards)
        ]
        #: tags whose replies should be dropped on arrival (absorbed
        #: cancellations that raced past their generate).
        self._discard_tags: List[set] = [set() for _ in range(self.shards)]
        #: bumped on every (re)spawn; a handle issued under an older epoch
        #: resolves its reply from the stash or the replay cache.
        self._epochs: List[int] = [0] * self.shards
        #: replies of journal-replayed commands from the latest recovery,
        #: keyed by absolute seq, per rank.
        self._replay_cache: List[Dict[int, Any]] = [
            {} for _ in range(self.shards)
        ]
        #: parent mirror of live selections: role -> (per-rank limits,
        #: [marked nodes]) — enough to rebuild worker selection state.
        self._selections: Dict[str, Tuple[List[int], List[int]]] = {}
        self._closed = False
        try:
            for rank in range(self.shards):
                self._spawn(rank)
        except BaseException:
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut workers down and release the shared graph block."""
        if self._closed:
            return
        self._closed = True
        for rank in range(self.shards):
            conn = self._conns[rank]
            if conn is not None:
                try:
                    tag = self._send(rank, "shutdown", {})
                    self._recv_tag(rank, tag)
                except _LINK_ERRORS:
                    pass
                conn.close()
                self._conns[rank] = None
        for rank in range(self.shards):
            proc = self._procs[rank]
            if proc is not None:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=5.0)
                self._procs[rank] = None
        if self._shm is not None:
            unlink_shared(self._shm)
            self._shm = None

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- wire primitives -----------------------------------------------
    def _send(self, rank: int, cmd: str, payload: dict) -> int:
        """Send one tagged command; returns the tag (may raise link errors)."""
        tag = self._tags[rank]
        self._tags[rank] += 1
        self._conns[rank].send((cmd, tag, payload))
        return tag

    def _recv_tag(self, rank: int, tag: int) -> Tuple[str, Any]:
        """Receive until ``tag``'s reply arrives, stashing out-of-order ones."""
        stash = self._stash[rank]
        hit = stash.pop(tag, None)
        if hit is not None:
            return hit
        conn = self._conns[rank]
        discard = self._discard_tags[rank]
        while True:
            rtag, status, reply = conn.recv()
            if rtag == tag:
                return status, reply
            if rtag in discard:
                discard.discard(rtag)
                continue
            stash[rtag] = (status, reply)

    def _exchange(self, rank: int, cmd: str, payload: dict):
        """One request/reply on an assumed-healthy link (may raise)."""
        tag = self._send(rank, cmd, payload)
        status, reply = self._recv_tag(rank, tag)
        if status == "error":
            raise ShardPoolError(f"shard {rank}: {reply}")
        return reply

    # -- spawn / recovery ----------------------------------------------
    def _spawn(self, rank: int, *, restore: bool = False) -> int:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                rank, child_conn, self._handle, self.spill_dir,
                self.checkpoint_every, restore,
            ),
            daemon=True,
            name=f"repro-shard-{rank}",
        )
        proc.start()
        child_conn.close()
        self._conns[rank] = parent_conn
        self._procs[rank] = proc
        self._epochs[rank] += 1
        reply = self._exchange(rank, "hello", {})
        return int(reply["seq"])

    def _drain_dead(self, rank: int) -> None:
        """Stash every reply still buffered in a dead worker's pipe.

        A reply that shipped before the crash survives in the pipe until
        EOF; stashing it (keyed by its tag, which is never reused) lets a
        pending handle resolve it after the respawn.
        """
        conn = self._conns[rank]
        if conn is None:
            return
        discard = self._discard_tags[rank]
        try:
            while conn.poll(0):
                rtag, status, reply = conn.recv()
                if rtag in discard:
                    discard.discard(rtag)
                    continue
                self._stash[rank][rtag] = (status, reply)
        except _LINK_ERRORS:
            pass

    def _recover(self, rank: int) -> None:
        """Respawn a dead worker and replay its journal suffix."""
        if self.metrics is not None:
            self.metrics.inc("shardpool.worker_crashes")
        proc = self._procs[rank]
        if proc is not None:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._drain_dead(rank)
        conn = self._conns[rank]
        if conn is not None:
            conn.close()
        restored = self._spawn(rank, restore=True)
        base = self._journal_base[rank]
        if restored < base:
            raise ShardPoolError(
                f"shard {rank}: restored checkpoint covers seq {restored} "
                f"but the journal was compacted up to seq {base}; the "
                "checkpoint that justified compaction is gone"
            )
        cache: Dict[int, Any] = {}
        self._replay_cache[rank] = cache
        try:
            for offset, (cmd, payload) in enumerate(
                self._journal[rank][restored - base:]
            ):
                cache[restored + offset] = self._exchange(rank, cmd, payload)
        except _LINK_ERRORS:
            raise ShardPoolError(
                f"shard {rank} died again during recovery replay; giving up"
            )
        # Selection state is not journaled (it is transient and cheap to
        # rebuild): re-open each live selection and re-mark its seeds.
        for role, (limits, marked) in self._selections.items():
            self._exchange(
                rank, "select_begin", {"role": role, "limit": limits[rank]}
            )
            for node in marked:
                self._exchange(
                    rank,
                    "select_mark",
                    {"role": role, "node": node, "want_decrements": False},
                )

    def _journal_payload(self, rank: int, seq: int) -> Optional[dict]:
        """The retained journal payload at absolute ``seq`` (None if
        compacted away — a shipped checkpoint already covers it)."""
        offset = seq - self._journal_base[rank]
        if 0 <= offset < len(self._journal[rank]):
            return self._journal[rank][offset][1]
        return None

    def _maybe_compact(self, rank: int) -> None:
        """Trim the replay journal up to the worker's shipped checkpoint."""
        if self.spill_dir is None or self.checkpoint_every <= 0:
            return
        if len(self._journal[rank]) < self.journal_compact_threshold:
            return
        try:
            ck = int(self._exchange(rank, "checkpoint_seq", {})["seq"])
        except _LINK_ERRORS:
            return  # dead worker: the next real command recovers it
        cut = ck - self._journal_base[rank]
        if cut > 0:
            del self._journal[rank][:cut]
            self._journal_base[rank] = ck
            if self.metrics is not None:
                self.metrics.inc("shardpool.journal_compactions")

    def _finish_request(
        self,
        rank: int,
        tag: Optional[int],
        seq: Optional[int],
        epoch: int,
        cmd: str,
        payload: dict,
    ):
        """Collect one reply, absorbing a worker crash at any point.

        The reply is taken from, in order: the live link; the stash (the
        dead pipe was drained, or an earlier collect stashed it); the
        replay cache (recovery re-ran the journaled command); or — for
        non-journaled commands only — a fresh re-issue on the respawned
        worker.
        """
        if tag is not None and epoch == self._epochs[rank]:
            try:
                status, reply = self._recv_tag(rank, tag)
            except _LINK_ERRORS:
                self._recover(rank)
            else:
                if status == "error":
                    raise ShardPoolError(f"shard {rank}: {reply}")
                return reply
        elif epoch == self._epochs[rank]:
            # The send itself failed on a live-looking link: recover now.
            self._recover(rank)
        if tag is not None:
            stashed = self._stash[rank].pop(tag, None)
            if stashed is not None:
                status, reply = stashed
                if status == "error":
                    raise ShardPoolError(f"shard {rank}: {reply}")
                return reply
        if seq is not None:
            reply = self._replay_cache[rank].get(seq)
            if reply is not None:
                return reply
            raise ShardPoolError(
                f"shard {rank}: reply for journaled seq {seq} was lost in "
                "recovery (neither drained nor replayed)"
            )
        return self._exchange(rank, cmd, payload)

    def _request(self, rank: int, cmd: str, payload: dict, journal: bool):
        if self._closed:
            raise ShardPoolError("shard pool is closed")
        seq: Optional[int] = None
        if journal:
            seq = self._journal_base[rank] + len(self._journal[rank])
            payload = dict(payload, seq=seq)
            self._journal[rank].append((cmd, payload))
        epoch = self._epochs[rank]
        try:
            tag: Optional[int] = self._send(rank, cmd, payload)
        except _LINK_ERRORS:
            tag = None
        reply = self._finish_request(rank, tag, seq, epoch, cmd, payload)
        if journal:
            self._maybe_compact(rank)
        return reply

    def _request_all(
        self,
        cmd: str,
        payloads: Sequence[dict],
        journal: bool = False,
    ) -> List[Any]:
        """Broadcast one command; gather replies in rank order.

        Sends are pipelined so multi-core hosts overlap worker execution;
        any link failure routes that rank through recovery, resolving the
        reply from the drained stash or the journal replay.
        """
        if self._closed:
            raise ShardPoolError("shard pool is closed")
        staged: List[dict] = []
        tags: List[Optional[int]] = []
        seqs: List[Optional[int]] = []
        epochs: List[int] = []
        for rank in range(self.shards):
            payload = payloads[rank]
            seq: Optional[int] = None
            if journal:
                seq = self._journal_base[rank] + len(self._journal[rank])
                payload = dict(payload, seq=seq)
                self._journal[rank].append((cmd, payload))
            staged.append(payload)
            seqs.append(seq)
            epochs.append(self._epochs[rank])
            try:
                tags.append(self._send(rank, cmd, payload))
            except _LINK_ERRORS:
                tags.append(None)
        replies = [
            self._finish_request(
                rank, tags[rank], seqs[rank], epochs[rank], cmd, staged[rank]
            )
            for rank in range(self.shards)
        ]
        if journal:
            for rank in range(self.shards):
                self._maybe_compact(rank)
        return replies

    # -- generation ----------------------------------------------------
    def _generate_payloads(
        self,
        role: str,
        counts: Sequence[int],
        seeds: Sequence[np.random.SeedSequence],
        *,
        generator_cls,
        batched_mode: Optional[str],
        batch_size: int,
        stop_mask: Optional[np.ndarray],
        want_metrics: bool,
    ) -> List[dict]:
        return [
            {
                "role": role,
                "count": int(counts[rank]),
                "seed": seeds[rank],
                "generator_cls": generator_cls,
                "batched_mode": batched_mode,
                "batch_size": int(batch_size),
                "stop_mask": stop_mask,
                "want_metrics": bool(want_metrics),
            }
            for rank in range(self.shards)
        ]

    def generate(
        self,
        role: str,
        counts: Sequence[int],
        seeds: Sequence[np.random.SeedSequence],
        *,
        generator_cls,
        batched_mode: Optional[str],
        batch_size: int,
        stop_mask: Optional[np.ndarray] = None,
        want_metrics: bool = False,
    ) -> List[dict]:
        """Broadcast one generate request; per-rank replies in rank order.

        Each reply carries ``sizes`` (per-set sizes, local order),
        ``totals`` (the counter delta tuple) and optionally a serialized
        metrics snapshot.  Counts of zero still round-trip so every rank's
        journal advances in lockstep.
        """
        payloads = self._generate_payloads(
            role, counts, seeds,
            generator_cls=generator_cls, batched_mode=batched_mode,
            batch_size=batch_size, stop_mask=stop_mask,
            want_metrics=want_metrics,
        )
        return self._request_all("generate", payloads, journal=True)

    def generate_async(
        self,
        role: str,
        counts: Sequence[int],
        seeds: Sequence[np.random.SeedSequence],
        *,
        generator_cls,
        batched_mode: Optional[str],
        batch_size: int,
        stop_mask: Optional[np.ndarray] = None,
        want_metrics: bool = False,
    ) -> PendingGenerate:
        """Issue a generate broadcast without waiting for the replies.

        The request is journaled exactly like :meth:`generate`; the
        returned :class:`PendingGenerate` collects the replies later.
        Until then the workers interleave: coverage, selection and stats
        commands sent on the same pipes are served between generation
        chunks, which is the mechanism behind speculative pipelining.
        Reads of the *new* prefix must wait for :meth:`PendingGenerate
        .collect` — interleaved reads see the pre-request pool.
        """
        if self._closed:
            raise ShardPoolError("shard pool is closed")
        payloads = self._generate_payloads(
            role, counts, seeds,
            generator_cls=generator_cls, batched_mode=batched_mode,
            batch_size=batch_size, stop_mask=stop_mask,
            want_metrics=want_metrics,
        )
        staged: List[dict] = []
        tags: List[Optional[int]] = []
        seqs: List[int] = []
        epochs: List[int] = []
        for rank in range(self.shards):
            seq = self._journal_base[rank] + len(self._journal[rank])
            payload = dict(payloads[rank], seq=seq)
            self._journal[rank].append(("generate", payload))
            staged.append(payload)
            seqs.append(seq)
            epochs.append(self._epochs[rank])
            try:
                tags.append(self._send(rank, "generate", payload))
            except _LINK_ERRORS:
                tags.append(None)
        return PendingGenerate(self, tags, seqs, epochs, staged)

    def adopt(self, role: str, shards_data, generator_cls) -> None:
        """Scatter pre-generated ``(nodes, sizes)`` pairs into the shards
        (equivalence tests and benchmarks; journaled like any mutation)."""
        payloads = [
            {
                "role": role,
                "nodes": nodes,
                "sizes": sizes,
                "generator_cls": generator_cls,
            }
            for nodes, sizes in shards_data
        ]
        self._request_all("adopt", payloads, journal=True)

    def reset_role(self, role: str) -> None:
        """Drop every shard of ``role`` (journaled)."""
        self._request_all(
            "reset_role", [{"role": role}] * self.shards, journal=True
        )

    def apply_delta(self, delta) -> List[dict]:
        """Broadcast one graph delta to every worker (journaled).

        Workers mutate their *private* graph state: block surgery replaces
        the read-only shared-memory views with ordinary arrays, so the
        parent's shared block — which a respawned worker re-attaches — is
        never written.  The parent's own graph object is not touched here;
        the session owns that mutation.
        """
        payload = {"delta": delta.to_payload()}
        return self._request_all(
            "apply_delta", [payload] * self.shards, journal=True
        )

    def repair(
        self,
        role: str,
        nodes: np.ndarray,
        *,
        entropy: int,
        role_key: int,
        epoch: int,
    ) -> List[dict]:
        """Resample the dirty sets of ``role`` on every shard (journaled).

        Each worker finds its own dirty local ids and reseeds them from
        ``SeedSequence(entropy, spawn_key=(role_key, REPAIR_KEY, epoch,
        rank, local_id))`` — deterministic per shard, so recovery replay
        reproduces the repaired pools bit-identically.
        """
        payload = {
            "role": role,
            "nodes": np.asarray(nodes, dtype=np.int64),
            "entropy": int(entropy),
            "role_key": int(role_key),
            "epoch": int(epoch),
        }
        return self._request_all(
            "repair", [payload] * self.shards, journal=True
        )

    def spill(self, role: Optional[str] = None) -> List[dict]:
        """Spill ``role`` (or all roles) to disk on every shard."""
        return self._request_all(
            "spill", [{"role": role}] * self.shards, journal=True
        )

    def stats(self) -> List[dict]:
        return self._request_all("stats", [{}] * self.shards)

    def checkpoint_seqs(self) -> List[int]:
        """Each rank's newest shipped checkpoint sequence number."""
        replies = self._request_all("checkpoint_seq", [{}] * self.shards)
        return [int(r["seq"]) for r in replies]

    def journal_lengths(self) -> List[int]:
        """Retained (post-compaction) journal entries per rank."""
        return [len(journal) for journal in self._journal]

    def crash_next_generate(self, rank: int) -> None:
        """Arm the chaos hook: ``rank`` dies mid-way through its next
        generate request (test-only)."""
        self._request(rank, "crash_next", {}, journal=False)

    # -- coverage (scatter-gather) -------------------------------------
    def coverage_counts(self, role: str, limits: Sequence[int]) -> np.ndarray:
        replies = self._request_all(
            "coverage_counts",
            [{"role": role, "limit": int(limits[r])} for r in range(self.shards)],
        )
        total = np.zeros(self.graph.n, dtype=np.int64)
        for reply in replies:
            total += reply["counts"]
        return total

    def coverage(self, role: str, limits: Sequence[int], seeds) -> int:
        seeds = list(seeds)
        replies = self._request_all(
            "coverage",
            [
                {"role": role, "limit": int(limits[r]), "seeds": seeds}
                for r in range(self.shards)
            ],
        )
        return int(sum(reply["covered"] for reply in replies))

    def per_set_sums(
        self, role: str, limits: Sequence[int], values: np.ndarray
    ) -> List[np.ndarray]:
        replies = self._request_all(
            "per_set_sums",
            [
                {"role": role, "limit": int(limits[r]), "values": values}
                for r in range(self.shards)
            ],
        )
        return [reply["sums"] for reply in replies]

    def sketch_registers(
        self,
        role: str,
        limits: Sequence[int],
        precision: int,
        hash_seed: int,
    ) -> np.ndarray:
        """Mergeable HLL coverage registers for the role's global prefix.

        Each worker sketches its local sets under globally distinct ids
        (``local_id * shards + rank``); the element-wise register maximum
        is then the *lossless* HLL union, so the merged rows estimate
        coverage over the whole partitioned pool.  Only ``(n, 2^precision)``
        uint8 arrays cross the wire — not per-set membership.
        """
        replies = self._request_all(
            "sketch_registers",
            [
                {
                    "role": role,
                    "limit": int(limits[r]),
                    "precision": int(precision),
                    "hash_seed": int(hash_seed),
                    "shards": self.shards,
                }
                for r in range(self.shards)
            ],
        )
        return np.maximum.reduce([reply["registers"] for reply in replies])

    # -- selection sessions --------------------------------------------
    def select_begin(self, role: str, limits: Sequence[int]) -> None:
        if role in self._selections:
            raise ShardPoolError(f"selection already active for {role!r}")
        limits = [int(limits[r]) for r in range(self.shards)]
        self._request_all(
            "select_begin",
            [{"role": role, "limit": lim} for lim in limits],
        )
        self._selections[role] = (limits, [])

    def select_mark(
        self, role: str, node: int, want_decrements: bool = True
    ) -> Tuple[int, np.ndarray]:
        """Mark ``node`` selected on every shard.

        Returns ``(newly_covered_total, members)`` where ``members`` is the
        concatenation of every newly covered set's nodes across shards
        (multiplicities preserved — the decrement mass).  Addition over
        shards is exact because the sets are partitioned.
        """
        replies = self._request_all(
            "select_mark",
            [
                {
                    "role": role,
                    "node": int(node),
                    "want_decrements": want_decrements,
                }
            ]
            * self.shards,
        )
        self._selections[role][1].append(int(node))
        newly = sum(r["newly"] for r in replies)
        if want_decrements:
            chunks = [r["members"] for r in replies if len(r["members"])]
            members = (
                np.concatenate(chunks)
                if chunks
                else np.empty(0, dtype=np.int64)
            )
        else:
            members = np.empty(0, dtype=np.int64)
        return int(newly), members

    def select_uncovered(self, role: str, nodes: np.ndarray) -> np.ndarray:
        replies = self._request_all(
            "select_uncovered",
            [{"role": role, "nodes": nodes}] * self.shards,
        )
        total = np.zeros(len(nodes), dtype=np.int64)
        for reply in replies:
            total += reply["counts"]
        return total

    def select_covered(self, role: str) -> List[np.ndarray]:
        replies = self._request_all(
            "select_covered", [{"role": role}] * self.shards
        )
        return [reply["covered"] for reply in replies]

    def select_end(self, role: str) -> None:
        self._selections.pop(role, None)
        if not self._closed:
            self._request_all("select_end", [{"role": role}] * self.shards)
