"""NumPy-vectorised vanilla RR generation — an engineering extra.

:class:`FastVanillaICGenerator` draws one coin *vector* per activated node
and filters in C, so it is much faster per examined edge than the
interpreted Algorithm 2 loop.  It samples the **identical distribution**
but deliberately breaks the cost model the shape benchmarks rely on (its
per-edge constant is a few nanoseconds, not the loop's hundreds), which is
why it is *not* used in the figure reproductions — see DESIGN.md
("Substitutions").  Use it when you just want seeds fast and the graph has
meaty degrees.

Note the coin order within a node differs from Algorithm 2's sequential
draws, so seeded runs differ draw-for-draw from
:class:`~repro.rrsets.vanilla.VanillaICGenerator` while remaining
distribution-equivalent.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from repro.rrsets.base import RRGenerator
from repro.utils.exceptions import ExecutionInterrupted


class FastVanillaICGenerator(RRGenerator):
    """Vectorised per-node coin flipping under the IC model."""

    name = "fast-vanilla"
    batched_mode = "ic"
    supported_batched_modes = ("ic",)

    def generate(
        self,
        rng: np.random.Generator,
        root: Optional[int] = None,
        stop_mask: Optional[np.ndarray] = None,
    ) -> List[int]:
        graph = self.graph
        indptr = graph.in_indptr
        indices = graph.in_indices
        probs = graph.in_probs
        visited = self._visited
        counters = self.counters

        self._begin()
        v = self._pick_root(rng, root)
        rr = [v]
        visited[v] = True
        if stop_mask is not None and stop_mask[v]:
            return self._finish(rr, hit_sentinel=True)

        queue = deque(rr)
        try:
            while queue:
                u = queue.popleft()
                lo, hi = indptr[u], indptr[u + 1]
                d = hi - lo
                if d == 0:
                    continue
                counters.edges_examined += int(d)
                counters.rng_draws += int(d)
                self._tick()
                hits = np.flatnonzero(rng.random(d) < probs[lo:hi])
                for j in hits:
                    w = int(indices[lo + j])
                    if not visited[w]:
                        visited[w] = True
                        rr.append(w)
                        if stop_mask is not None and stop_mask[w]:
                            return self._finish(rr, hit_sentinel=True)
                        queue.append(w)
        except ExecutionInterrupted:
            self._abandon(rr)
            raise
        return self._finish(rr)
