"""RR-set banks: append-only pools that survive the query that filled them.

An :class:`RRBank` binds one :class:`~repro.rrsets.collection.RRCollection`
to the (generator, RNG stream) pair that fills it, which is what makes the
pool *prefix-stable*: because the bank owns its stream, the first ``theta``
sets it ever materialises are a deterministic function of the stream
origin — independent of how many queries asked for them or how far past
``theta`` the pool has since grown.  A warm query that needs ``theta`` sets
can therefore select over :meth:`ensure`'s prefix view and obtain exactly
the sets a cold run of size ``theta`` would have generated.

Two operating modes share the class:

* **Transient** (``reusable=False``) — the bank wraps the run's own RNG
  exactly as the pre-bank code did (pools interleave their draws on one
  stream), lives for a single ``run()``, and adds no accounting.  This is
  the default-path mode and is bit-identical to the historical behaviour.
* **Session** (``reusable=True``) — the bank owns a private stream, records
  a *counter mark* (a snapshot of the generator's cumulative counters) at
  every pool size it has ever stopped at, and reports reuse/generation
  deltas to the metric sinks installed by
  :meth:`~repro.engine.session.BankProvider.begin_query`.  Marks are what
  let a warm query report the same generation cost a cold run of its
  prefix would have paid.

Memory accounting: ``byte_cap`` bounds the pool's resident bytes.  The cap
is enforced *between* queries (:meth:`end_query`), never mid-query — a
query's prefix must stay stable while it is being served.  Eviction resets
the pool, the generator counters, and the RNG back to the stream origin,
so the next query regenerates the identical prefix from scratch.
"""

from __future__ import annotations

import sys
import zlib
from typing import Any, Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.rrsets.base import GenerationCounters, RRGenerator
from repro.rrsets.collection import RRCollection, RRPrefixView
from repro.runtime.checkpoint import counters_from_dict, counters_to_dict
from repro.utils.exceptions import (
    CheckpointError,
    ConfigurationError,
    ExecutionInterrupted,
)

PoolLike = Union[RRCollection, RRPrefixView]

#: spawn-key tag separating repair streams from every other stream derived
#: from the session entropy (role streams use ``(crc32(role),)``; repair
#: fallback seeds are ``(crc32(role), REPAIR_KEY, epoch, set_id)``).
REPAIR_KEY = 0x5250


def _zero_mark() -> Dict[str, int]:
    return counters_to_dict(GenerationCounters())


def _approx_nbytes(obj: Any) -> int:
    """Deep ``sys.getsizeof`` for the plain-data journal entries.

    Journal entries are small nested dicts of ints/strings (one RNG
    bit-generator state each); a recursive shallow-size sum is an honest
    resident-byte estimate for them — no cycles, no shared substructure
    worth deduplicating.
    """
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        size += sum(
            _approx_nbytes(k) + _approx_nbytes(v) for k, v in obj.items()
        )
    elif isinstance(obj, (list, tuple)):
        size += sum(_approx_nbytes(item) for item in obj)
    return size


def replay_units(
    journal: list,
    dirty_ids: np.ndarray,
    repair_gen: RRGenerator,
) -> Tuple[list, list, list, list]:
    """Regenerate every journaled unit containing a dirty set.

    Each journal entry records the RNG bit-generator state captured before
    one generation unit (a single sequential ``generate`` call or one
    ``generate_batch`` chunk — see :meth:`RRCollection.extend`).  Replaying
    a dirty unit's *original* state on the mutated graph is the exact
    coupling: the replacement is distributed precisely as a cold sample on
    the new graph, and a unit none of whose walks read a changed
    in-adjacency block replays bit-identically (which is why clean units
    can be kept verbatim in the first place).  Resampling with *fresh*
    seeds instead would bias the pool — kept sets are conditioned on
    avoiding the touched nodes, so touched-node membership would fall from
    ``p`` to roughly ``p**2``.

    Returns ``(ids, node_chunks, sizes, uncovered)`` where ``uncovered``
    lists the dirty set ids no replayable unit covers (adopted sets,
    under-delivered chunks, pre-journal snapshots); the caller decides how
    to resample those.
    """
    dirty_ids = np.asarray(dirty_ids, dtype=np.int64)
    if len(journal):
        starts = np.array([e["start"] for e in journal], dtype=np.int64)
        counts = np.array([e["count"] for e in journal], dtype=np.int64)
        replayable = np.array(
            [
                e["count"] == e["requested"] and e.get("state") is not None
                for e in journal
            ],
            dtype=bool,
        )
        unit_of = np.searchsorted(starts, dirty_ids, side="right") - 1
        covered = (unit_of >= 0) & (
            dirty_ids < starts[unit_of] + counts[unit_of]
        ) & replayable[unit_of]
    else:
        unit_of = np.full(len(dirty_ids), -1, dtype=np.int64)
        covered = np.zeros(len(dirty_ids), dtype=bool)
    uncovered = [int(i) for i in dirty_ids[~covered]]
    ids: list = []
    chunks: list = []
    sizes: list = []
    # One Generator per bit-generator class, re-stated per unit:
    # construction dominates replay overhead for single-set units.
    rng_pool: Dict[str, np.random.Generator] = {}
    for unit in np.unique(unit_of[covered]):
        entry = journal[int(unit)]
        state = entry["state"]
        rng = rng_pool.get(state["bit_generator"])
        if rng is None:
            bitgen_cls = getattr(np.random, state["bit_generator"])
            rng = np.random.Generator(bitgen_cls())
            rng_pool[state["bit_generator"]] = rng
        rng.bit_generator.state = state
        if entry["mode"] == "seq":
            rr = np.asarray(repair_gen.generate(rng), dtype=np.int64)
            ids.append(int(entry["start"]))
            chunks.append(rr)
            sizes.append(len(rr))
        else:
            nodes, unit_sizes = repair_gen.generate_batch(rng, entry["count"])
            if len(unit_sizes) != entry["count"]:
                raise ConfigurationError(
                    f"repair replay of unit at {entry['start']} delivered "
                    f"{len(unit_sizes)} sets, expected {entry['count']}"
                )
            ids.extend(range(entry["start"], entry["start"] + entry["count"]))
            chunks.append(np.asarray(nodes, dtype=np.int64))
            sizes.extend(int(s) for s in unit_sizes)
    return ids, chunks, sizes, uncovered


class RRBank:
    """An append-only RR pool bound to one generator and one RNG stream."""

    def __init__(
        self,
        graph: CSRGraph,
        generator: RRGenerator,
        rng: np.random.Generator,
        *,
        role: str = "bank",
        stop_mask: Optional[np.ndarray] = None,
        reusable: bool = False,
        byte_cap: Optional[int] = None,
        entropy: Optional[int] = None,
    ) -> None:
        if reusable and stop_mask is not None:
            raise ConfigurationError(
                "a reusable bank cannot carry a stop mask: masked RR sets "
                "are query-specific and must not be served to other queries"
            )
        self.graph = graph
        self.generator = generator
        self.rng = rng
        self.role = role
        self.stop_mask = stop_mask
        self.reusable = reusable
        self.byte_cap = byte_cap
        #: session entropy the bank's streams derive from; required only by
        #: :meth:`repair`'s fresh-seed fallback for sets the unit journal
        #: does not cover.
        self.entropy = entropy
        self._repair_epoch = 0
        #: per-unit RNG states captured during generation (reusable banks
        #: only) — the seed specs :meth:`repair` replays.
        self._journal: list = []
        #: cached per-entry size estimate for :meth:`nbytes` (entries are
        #: homogeneous; one deep measurement amortizes over the journal)
        self._journal_entry_nbytes: Optional[int] = None
        self.pool = RRCollection(graph.n)
        # The stream origin: eviction rewinds here so the regenerated
        # prefix is identical to the evicted one.
        self._rng_state0: Optional[Dict[str, Any]] = (
            rng.bit_generator.state if reusable else None
        )
        self._marks: Dict[int, Dict[str, int]] = {0: _zero_mark()}
        self._sinks: Tuple[Any, ...] = ()
        self._used = 0
        self._query_base = 0
        self._reuse_counted = 0
        self._dirty = False

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def ensure(
        self, theta: int, stop_mask: Optional[np.ndarray] = None
    ) -> PoolLike:
        """Grow the pool to at least ``theta`` sets; return the prefix view.

        Existing sets are never regenerated — a warm call whose prefix is
        already materialised only does reuse accounting.  An interrupt
        mid-extension marks the bank dirty; :meth:`end_query` evicts dirty
        session banks so a half-extended pool never serves a later query.
        """
        theta = int(theta)
        mask = self._resolve_mask(stop_mask)
        have = self.pool.num_rr
        if theta > have:
            try:
                self.pool.extend(
                    theta - have,
                    self.generator,
                    self.rng,
                    mask,
                    journal=self._journal if self.reusable else None,
                )
            except ExecutionInterrupted:
                self._dirty = True
                raise
            if self.reusable:
                self._marks[self.pool.num_rr] = counters_to_dict(
                    self.generator.counters
                )
            metrics = getattr(self.generator, "metrics", None)
            if metrics is not None:
                # extend() published the pool-only figure; overwrite with
                # the bank-level total (journal + sketch registers) so the
                # gauge matches what byte_cap eviction accounts.
                metrics.set_gauge("rr_pool_bytes", self.nbytes())
        self._account(min(theta, self.pool.num_rr), self.pool.num_rr - have)
        return self.view(theta)

    def take(self, index: int) -> np.ndarray:
        """The nodes of set ``index``, generating it if it is the next one.

        This is the cursor-style access pattern of SSA's validation phase
        and Borgs' edge-budgeted loop: both consume sets one at a time and
        consult the generation cost after each.  Generation always uses the
        sequential single-set path (``generator.generate``), matching the
        historical per-set draws of those loops regardless of the bank's
        batching configuration, and a reusable bank records a counter mark
        per set so :meth:`counters_at` is exact at every cut point.
        """
        index = int(index)
        generated = 0
        if index >= self.pool.num_rr:
            if index != self.pool.num_rr:
                raise IndexError(
                    f"take({index}) skips sets: pool holds {self.pool.num_rr}"
                )
            state = self.rng.bit_generator.state if self.reusable else None
            try:
                rr = self.generator.generate(self.rng, stop_mask=self.stop_mask)
            except ExecutionInterrupted:
                self._dirty = True
                raise
            self.pool.add(rr)
            if self.reusable:
                self._journal.append({
                    "start": index,
                    "count": 1,
                    "requested": 1,
                    "mode": "seq",
                    "state": state,
                })
            generated = 1
            if self.reusable:
                self._marks[self.pool.num_rr] = counters_to_dict(
                    self.generator.counters
                )
        self._account(index + 1, generated)
        return self.pool.set_nodes(index)

    def view(self, theta: int) -> PoolLike:
        """Prefix view over ``min(theta, pool size)`` sets (no growth)."""
        return self.pool.prefix(min(int(theta), self.pool.num_rr))

    def _resolve_mask(
        self, stop_mask: Optional[np.ndarray]
    ) -> Optional[np.ndarray]:
        if stop_mask is None:
            return self.stop_mask
        if self.reusable:
            raise ConfigurationError(
                f"bank {self.role!r} is reusable and cannot generate "
                "stop-masked sets"
            )
        return stop_mask

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _account(self, used: int, generated: int) -> None:
        if used > self._used:
            self._used = used
        reused_now = min(used, self._query_base)
        fresh = reused_now - self._reuse_counted
        if fresh > 0:
            self._reuse_counted = reused_now
        for sink in self._sinks:
            if generated:
                sink.inc("bank.sets_generated", generated)
            if fresh > 0:
                sink.inc("bank.sets_reused", fresh)

    def counters_at(self, num_sets: int) -> GenerationCounters:
        """Cumulative generation counters after the first ``num_sets`` sets.

        Live generator counters when ``num_sets`` reaches the pool frontier
        (the transient/cold case); otherwise the recorded mark.  Marks are
        exact at every pool size the bank has stopped at (every ``ensure``
        boundary and every ``take``); for an unmarked interior size the
        nearest mark at or below is returned — a documented approximation
        that only arises when a warm query cuts a doubling schedule at a
        point no cold run ever stops at.
        """
        num_sets = int(num_sets)
        if num_sets >= self.pool.num_rr:
            return self.generator.counters
        mark = self._marks.get(num_sets)
        if mark is None:
            best = max(size for size in self._marks if size <= num_sets)
            mark = self._marks[best]
        return counters_from_dict(mark)

    @property
    def counters(self) -> GenerationCounters:
        """Generation cost attributable to the *current* query.

        Transient banks report the live generator counters (they live for
        exactly one query); reusable banks report the cost of the prefix
        the query actually consumed, which matches what a cold run of that
        prefix would have paid.
        """
        if not self.reusable:
            return self.generator.counters
        return self.counters_at(self._used)

    def journal_nbytes(self) -> int:
        """Approximate resident bytes of the per-unit RNG journal."""
        if not self._journal:
            return 0
        if self._journal_entry_nbytes is None:
            self._journal_entry_nbytes = _approx_nbytes(self._journal[0])
        return len(self._journal) * self._journal_entry_nbytes

    def nbytes(self) -> int:
        """Resident bytes the bank pins: pool buffers (including any
        attached sketch registers) plus the repair journal.

        The journal grows one entry per generation unit and was previously
        invisible to ``byte_cap`` accounting, letting a "capped" bank hold
        arbitrarily more memory than its pool; the gauge and eviction now
        see the full figure.
        """
        return self.pool.nbytes() + self.journal_nbytes()

    @property
    def over_cap(self) -> bool:
        return self.byte_cap is not None and self.nbytes() > self.byte_cap

    # ------------------------------------------------------------------
    # incremental repair
    # ------------------------------------------------------------------
    def _fresh_generator(self) -> RRGenerator:
        """A new generator instance with this bank's model configuration.

        Construction re-derives every graph-dependent cache (e.g. SUBSIM's
        per-node rate arrays are fingerprint-keyed), so a generator built
        after :meth:`CSRGraph.apply_delta` samples from the mutated graph.
        """
        cls = type(self.generator)
        mode = getattr(self.generator, "general_mode", None)
        gen = cls(self.graph, mode) if mode is not None else cls(self.graph)
        gen.batched_mode = self.generator.batched_mode
        gen.batch_size = self.generator.batch_size
        gen.workers = self.generator.workers
        return gen

    def repair(self, dirty_nodes: np.ndarray) -> Dict[str, Any]:
        """Resample the stored sets a graph delta invalidated, in place.

        ``dirty_nodes`` are the delta's touched nodes (destinations of
        changed edges).  Generation only examines the in-adjacency blocks
        of nodes it activates, so a stored set containing no touched node
        would replay bit-identically on the mutated graph — those sets are
        kept verbatim and the pool's prefix stability survives.  Dirty
        sets are regenerated by :func:`replay_units`: each owning
        generation unit replays its journaled RNG state on the mutated
        graph, the exact coupling under which the repaired pool is
        distributed precisely as a cold pool on the new graph.  Dirty sets
        the journal cannot replay (adopted pools, pre-journal snapshots)
        fall back to fresh per-set seeds ``SeedSequence(entropy,
        spawn_key=(crc32(role), REPAIR_KEY, repair_epoch, set_id))``.

        The bank's growth generator is also rebuilt (its construction-time
        caches described the pre-delta graph).  Resampling runs on a
        separate fresh generator so the cumulative counters — and the
        marks recorded from them — keep describing the prefix's own
        generation cost; the repair cost is returned, not mixed in.
        """
        if not self.reusable:
            raise ConfigurationError("only reusable banks can be repaired")
        dirty_nodes = np.asarray(dirty_nodes, dtype=np.int64)
        self._repair_epoch += 1
        num_rr = self.pool.num_rr
        dirty_ids = self.pool.sets_touching(dirty_nodes)

        old = self.generator
        fresh = self._fresh_generator()
        fresh.counters = old.counters
        fresh.control = old.control
        fresh.metrics = old.metrics
        fresh._reported_edges = old._reported_edges
        self.generator = fresh

        num_resampled = 0
        num_fallback = 0
        if len(dirty_ids):
            repair_gen = self._fresh_generator()
            ids, chunks, sizes, uncovered = replay_units(
                self._journal, dirty_ids, repair_gen
            )
            num_fallback = len(uncovered)
            if uncovered:
                if self.entropy is None:
                    raise ConfigurationError(
                        f"bank {self.role!r} has no entropy: "
                        f"{num_fallback} dirty sets are outside the unit "
                        "journal and need fallback reseed specs"
                    )
                role_key = zlib.crc32(self.role.encode("utf-8"))
                for set_id in uncovered:
                    seq = np.random.SeedSequence(
                        self.entropy,
                        spawn_key=(
                            role_key,
                            REPAIR_KEY,
                            self._repair_epoch,
                            int(set_id),
                        ),
                    )
                    rr = np.asarray(
                        repair_gen.generate(np.random.default_rng(seq)),
                        dtype=np.int64,
                    )
                    ids.append(int(set_id))
                    chunks.append(rr)
                    sizes.append(len(rr))
            order = np.argsort(np.asarray(ids, dtype=np.int64))
            flat = np.concatenate(chunks) if chunks else np.empty(0, np.int64)
            sizes_arr = np.asarray(sizes, dtype=np.int64)
            bounds = np.concatenate(([0], np.cumsum(sizes_arr)))
            reordered = [flat[bounds[i]:bounds[i + 1]] for i in order]
            self.pool.replace_sets(
                np.asarray(ids, dtype=np.int64)[order],
                np.concatenate(reordered),
                sizes_arr[order],
            )
            num_resampled = len(ids)
            repair_counters = counters_to_dict(repair_gen.counters)
        else:
            repair_counters = _zero_mark()
        return {
            "num_rr": int(num_rr),
            "num_dirty": int(len(dirty_ids)),
            "num_resampled": int(num_resampled),
            "num_fallback": int(num_fallback),
            "dirty_fraction": (
                len(dirty_ids) / num_rr if num_rr else 0.0
            ),
            "repair_epoch": int(self._repair_epoch),
            "repair_counters": repair_counters,
        }

    # ------------------------------------------------------------------
    # query lifecycle
    # ------------------------------------------------------------------
    def begin_query(self, sinks: Iterable[Any] = ()) -> None:
        """Start serving a query: reset per-query accounting."""
        self._sinks = tuple(sinks)
        self._query_base = self.pool.num_rr
        self._reuse_counted = 0
        self._used = 0

    def end_query(self) -> bool:
        """Finish the query; evict if dirty or over the byte cap."""
        evicted = False
        if self.reusable and (self._dirty or self.over_cap):
            self.evict()
            evicted = True
        self._sinks = ()
        return evicted

    def evict(self) -> None:
        """Drop the pool and rewind to the stream origin.

        Only meaningful for reusable banks: the RNG is restored to its
        recorded origin and the generator's counters zeroed, so the next
        query regenerates a bit-identical prefix from scratch.
        """
        if not self.reusable:
            raise ConfigurationError("only reusable banks can be evicted")
        for sink in self._sinks:
            sink.inc("bank.evictions")
        sketch = self.pool.coverage_sketch
        self.pool = RRCollection(self.graph.n)
        if sketch is not None:
            # Keep the sketch identity across eviction: the regenerated
            # prefix re-ingests into empty registers of the same shape.
            self.pool.attach_sketch(sketch.fresh())
        self.generator.counters = GenerationCounters()
        self.generator._reported_edges = 0
        self.rng.bit_generator.state = self._rng_state0
        self._journal = []
        self._journal_entry_nbytes = None
        self._marks = {0: _zero_mark()}
        self._used = 0
        self._query_base = 0
        self._reuse_counted = 0
        self._dirty = False

    def reset_pool(self) -> None:
        """Drop the pool but keep the generator and RNG where they are.

        The pattern of HIST's sentinel verification: each candidate gets a
        fresh stop-masked pool while the stream keeps advancing — exactly
        the historical fresh-``RRCollection``-per-candidate behaviour.
        """
        if self.reusable:
            raise ConfigurationError(
                "reusable banks are prefix-stable and cannot be reset "
                "mid-stream; use evict()"
            )
        self.pool = RRCollection(self.graph.n)
        self._used = 0
        self._query_base = 0
        self._reuse_counted = 0

    # ------------------------------------------------------------------
    # checkpoint / warm-start serialization
    # ------------------------------------------------------------------
    def adopt(self, pool: RRCollection, counters_payload: Dict[str, int]) -> None:
        """Install a checkpoint-restored pool and counter state.

        The transient half of resume: run-level checkpoints persist pools
        and counters, and the run's RNG state is restored separately by the
        algorithm.  Session banks never adopt run checkpoints (their state
        round-trips through :meth:`state_dict`).
        """
        if self.reusable:
            raise ConfigurationError(
                "cannot adopt run-checkpoint state into a session bank"
            )
        self.pool = pool
        self.generator.counters = counters_from_dict(counters_payload)
        self.generator._reported_edges = self.generator.counters.edges_examined

    def state_dict(self) -> Dict[str, Any]:
        """JSON-able warm-start state (pool arrays travel separately)."""
        return {
            "role": self.role,
            "generator": type(self.generator).__name__,
            "num_rr": int(self.pool.num_rr),
            "counters": counters_to_dict(self.generator.counters),
            "marks": {
                str(size): dict(mark) for size, mark in self._marks.items()
            },
            "rng_state": self.rng.bit_generator.state,
            "rng_state0": self._rng_state0,
            "repair_epoch": int(self._repair_epoch),
            "journal": list(self._journal),
            # Sketch identity only: registers are a deterministic function
            # of (pool, precision, salt) and re-derive on restore.
            "sketch": (
                self.pool.coverage_sketch.spec()
                if self.pool.coverage_sketch is not None
                else None
            ),
        }

    def restore_state(
        self, payload: Dict[str, Any], pool: RRCollection
    ) -> None:
        """Warm-start from a :meth:`state_dict` payload and restored pool."""
        expected = type(self.generator).__name__
        found = payload.get("generator")
        if found != expected:
            raise CheckpointError(
                f"bank {self.role!r} was saved with generator {found!r}, "
                f"not {expected!r}"
            )
        if int(payload.get("num_rr", -1)) != pool.num_rr:
            raise CheckpointError(
                f"bank {self.role!r}: pool holds {pool.num_rr} sets but the "
                f"metadata recorded {payload.get('num_rr')}"
            )
        self.pool = pool
        self.generator.counters = counters_from_dict(payload["counters"])
        self.generator._reported_edges = self.generator.counters.edges_examined
        self._marks = {
            int(size): {k: int(v) for k, v in mark.items()}
            for size, mark in payload["marks"].items()
        }
        self._rng_state0 = payload["rng_state0"]
        self.rng.bit_generator.state = payload["rng_state"]
        self._repair_epoch = int(payload.get("repair_epoch", 0))
        self._journal = list(payload.get("journal", []))
        self._journal_entry_nbytes = None
        sketch_spec = payload.get("sketch")
        if sketch_spec is not None:
            from repro.coverage.sketch import CoverageSketch

            sketch = pool.attach_sketch(
                CoverageSketch.from_spec(pool.n, sketch_spec)
            )
            sketch.sync(pool)
        self._dirty = False
