"""Multiprocess fan-out for batched RR-set generation.

RIS sampling is embarrassingly parallel: RR sets are i.i.d., so a request
for ``count`` sets can be sharded across worker processes that each run the
batched engine on an independent random stream.  Three properties make the
fan-out safe to use inside the algorithms:

* **Deterministic streams** — the parent draws one 64-bit value from the
  algorithm's RNG, seeds a :class:`numpy.random.SeedSequence` with it, and
  ``spawn``\\ s one child sequence per worker.  Fixed ``(seed, workers)``
  therefore reproduces the exact same pool run-to-run (a different
  ``workers`` value is a different — equally valid — sample).
* **Deterministic merge** — shards are concatenated in worker-rank order,
  never in completion order.
* **Honest accounting** — each worker returns its counter totals; the
  parent folds them into the requesting generator's counters and reports
  the merged spend to the attached :class:`~repro.runtime.control
  .RunControl` at the fan-out boundary (budgets cannot be polled *inside*
  a worker, so caps are enforced between fan-out calls; use single-process
  mode when mid-generation enforcement matters).

Because worker streams are independent of the parent stream, fan-out runs
are **not** bit-identical to sequential runs and cannot resume sequential
checkpoints — the CLI rejects ``--workers > 1`` with ``--resume``.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional, Tuple

import numpy as np

from repro.rrsets.base import GenerationCounters

#: below this request size the fork/pickle overhead dwarfs the work; the
#: fan-out silently degrades to in-process batched generation.
MIN_SETS_PER_WORKER = 8


def shard_counts(count: int, workers: int) -> list:
    """Split ``count`` sets into per-rank shard sizes (first ranks larger)."""
    base, extra = divmod(count, workers)
    return [base + (1 if r < extra else 0) for r in range(workers)]


def _worker_generate(args):
    """Pool worker: build a fresh generator and batch-generate one shard.

    When the parent has a metrics sink, the worker runs its own private
    :class:`~repro.observability.registry.MetricsRegistry` and ships its
    serialized snapshot back (histograms and worker-own counters only —
    *not* the generation counters, which travel in the dedicated totals
    tuple and are folded into the parent generator's counters).
    """
    (
        generator_cls, graph, count, batch_size, child_seq, stop_mask, want,
        batched_mode,
    ) = args
    gen = generator_cls(graph)
    # The parent's kernel selection travels with the job: a worker-built
    # generator must run the same batched mode the requesting generator
    # resolved (including any per-run override).
    gen.batched_mode = batched_mode
    if want:
        from repro.observability.registry import MetricsRegistry

        gen.metrics = MetricsRegistry()
    rng = np.random.default_rng(child_seq)
    chunks = []
    size_chunks = []
    remaining = count
    while remaining > 0:
        b = min(batch_size, remaining)
        nodes, sizes = gen.generate_batch(rng, b, stop_mask=stop_mask)
        chunks.append(nodes)
        size_chunks.append(sizes)
        remaining -= len(sizes)
    nodes = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    sizes = (
        np.concatenate(size_chunks) if size_chunks else np.empty(0, dtype=np.int64)
    )
    c = gen.counters
    metrics_payload = gen.metrics.snapshot() if want else None
    return nodes, sizes, (
        c.edges_examined, c.rng_draws, c.nodes_added,
        c.sets_generated, c.sentinel_hits,
    ), metrics_payload


def _merge_counters(counters: GenerationCounters, totals) -> None:
    counters.edges_examined += totals[0]
    counters.rng_draws += totals[1]
    counters.nodes_added += totals[2]
    counters.sets_generated += totals[3]
    counters.sentinel_hits += totals[4]


def generate_multiprocess(
    gen,
    count: int,
    rng: np.random.Generator,
    workers: int,
    stop_mask: Optional[np.ndarray] = None,
    mp_context: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``count`` RR sets across ``workers`` processes.

    ``gen`` supplies the generator class, graph, batch size, counters and
    run control; the returned flat ``(nodes, sizes)`` arrays are the rank-
    ordered concatenation of the worker shards.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    batch_size = max(2, int(getattr(gen, "batch_size", 1) or 1))
    control = gen.control
    if control is not None:
        control.on_rr_start()
        if control.budget.max_rr_sets is not None:
            count = min(count, control.budget.max_rr_sets - control.rr_sets)
    if count <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    # One draw of parent entropy keys the whole fan-out deterministically.
    gen.counters.rng_draws += 1
    entropy = int(rng.integers(0, 2**63 - 1))
    want_metrics = gen.metrics is not None

    effective = min(workers, max(1, count // MIN_SETS_PER_WORKER))
    if effective <= 1:
        # Not enough work to amortise process startup: stay in-process but
        # keep the same derived stream so results depend only on (seed,
        # workers), not on the degradation decision path.  The degradation
        # is *not* silent: requesting ``workers > 1`` and running on one
        # process is a surprise worth surfacing, so it lands in the run
        # report as a ``generation.fanout_degraded`` counter.
        if want_metrics:
            gen.metrics.inc("generation.fanout_degraded")
        child = np.random.SeedSequence(entropy).spawn(1)[0]
        args = (
            type(gen), gen.graph, count, batch_size, child, stop_mask,
            want_metrics, gen.batched_mode,
        )
        nodes, sizes, totals, payload = _worker_generate(args)
        _merge_counters(gen.counters, totals)
        if payload is not None:
            gen.metrics.merge_snapshot(payload)
        _report(gen, control, sizes, totals)
        return nodes, sizes

    children = np.random.SeedSequence(entropy).spawn(effective)
    shards = shard_counts(count, effective)
    jobs = [
        (
            type(gen), gen.graph, shards[r], batch_size, children[r],
            stop_mask, want_metrics, gen.batched_mode,
        )
        for r in range(effective)
    ]
    ctx = multiprocessing.get_context(mp_context)
    with ctx.Pool(processes=effective) as pool:
        results = pool.map(_worker_generate, jobs)  # rank order preserved

    nodes = np.concatenate([r[0] for r in results])
    sizes = np.concatenate([r[1] for r in results])
    merged = tuple(sum(r[2][i] for r in results) for i in range(5))
    _merge_counters(gen.counters, merged)
    if want_metrics:
        # Child-process metrics join the run at the same rank-order merge
        # point as the shards; merging is commutative, so rank order is a
        # convention here, not a correctness requirement.
        gen.metrics.merge_snapshots(r[3] for r in results)
        gen.metrics.inc("fanout.calls")
        gen.metrics.inc("fanout.workers_used", effective)
    _report(gen, control, sizes, merged)
    return nodes, sizes


def _report(gen, control, sizes, totals) -> None:
    """Fold the fan-out's spend into the run control at the boundary."""
    if control is None:
        return
    gen._tick()  # reports the merged edges_examined delta
    for size in sizes:
        control.on_rr_complete(int(size))
