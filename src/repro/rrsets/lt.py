"""Linear-threshold RR-set generation.

Under the LT model's live-edge interpretation, each node keeps at most one
incoming edge: edge ``(u, v)`` survives with probability ``p(u, v)`` and no
edge survives with probability ``1 - sum of incoming weights``.  A reverse
reachable set is therefore a simple backward *walk*: from the root, repeatedly
step to the single live in-neighbor until the walk stops or revisits a node.

The cost of sampling the live edge at a node is proportional to the incoming
weight mass (cf. paper Section 3.2, "Extensions to LT model"), which is what
gives LT-based IM its ``O(k n log n / eps^2)`` bound without any changes to
the generator.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.rrsets.base import RRGenerator
from repro.utils.exceptions import ExecutionInterrupted


class LTGenerator(RRGenerator):
    """Backward live-edge walk producing LT RR sets.

    Requires each node's incoming probabilities to sum to at most 1 (apply
    :func:`repro.graphs.weights.lt_normalized_weights` first); construction
    validates this.
    """

    name = "lt"
    batched_mode = "lt"
    supported_batched_modes = ("lt",)

    def __init__(self, graph) -> None:
        super().__init__(graph)
        if graph.n and float(graph.in_prob_sums.max()) > 1.0 + 1e-9:
            raise ValueError(
                "LT model requires per-node incoming probabilities summing "
                "to at most 1; apply lt_normalized_weights() first"
            )

    def generate(
        self,
        rng: np.random.Generator,
        root: Optional[int] = None,
        stop_mask: Optional[np.ndarray] = None,
    ) -> List[int]:
        graph = self.graph
        indptr = graph.in_indptr
        indices = graph.in_indices
        probs = graph.in_probs
        visited = self._visited
        counters = self.counters
        random = rng.random

        self._begin()
        v = self._pick_root(rng, root)
        rr = [v]
        visited[v] = True
        if stop_mask is not None and stop_mask[v]:
            return self._finish(rr, hit_sentinel=True)

        current = v
        try:
            while True:
                self._tick()
                lo = indptr[current]
                hi = indptr[current + 1]
                if lo == hi:
                    break
                counters.rng_draws += 1
                draw = random()
                acc = 0.0
                nxt = -1
                for j in range(lo, hi):
                    counters.edges_examined += 1
                    acc += probs[j]
                    if draw < acc:
                        nxt = indices[j]
                        break
                if nxt < 0:  # the "no live in-edge" outcome
                    break
                if visited[nxt]:  # walked into a cycle; everything ahead is known
                    break
                visited[nxt] = True
                rr.append(nxt)
                if stop_mask is not None and stop_mask[nxt]:
                    return self._finish(rr, hit_sentinel=True)
                current = nxt
        except ExecutionInterrupted:
            self._abandon(rr)
            raise
        return self._finish(rr)
