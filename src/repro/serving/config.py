"""Server configuration: one declarative dataclass.

Every knob the daemon honors lives here so tests, the CLI and the load-test
harness construct servers the same way.  The defaults are conservative:
small worker pool, bounded queue, snapshots after every query when a
snapshot directory is configured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.runtime.budget import Budget
from repro.utils.exceptions import ConfigurationError


@dataclass
class ServerConfig:
    """Declarative configuration for a :class:`~repro.serving.server.QueryServer`.

    Attributes
    ----------
    host, port:
        Bind address; ``port=0`` asks the OS for an ephemeral port (the
        bound port is readable from ``QueryServer.address`` after start).
    workers:
        Query worker threads.  Each worker serves one query at a time; a
        tenant's session is additionally serialized by its own lock, so
        bank eviction stays strictly between queries even under
        concurrency.
    max_pending:
        Dispatch-queue bound.  A request arriving while ``max_pending``
        queries are already waiting is shed with HTTP 429 instead of
        queued — the admission-control half of the resilience contract.
    algorithm, eps:
        Defaults for queries that do not specify their own.
    seed:
        Server entropy root.  Per-tenant session entropy is a pure
        function of ``(seed, tenant, graph)``, which is what makes
        restart recovery bit-identical.
    byte_cap:
        Per-session RR-bank byte cap (the cache tier); eviction runs
        strictly between queries.
    tenant_byte_caps:
        Per-tenant overrides of ``byte_cap`` keyed by tenant name.  A
        tenant listed here gets its own cap (which may be larger or
        smaller than the global default); everyone else falls back to
        ``byte_cap``.
    coverage_backend:
        Default coverage backend for every tenant session: ``"exact"``
        (inverted-CSR selection, the historical behavior), ``"sketch"``
        (per-node HLL coverage rows — far smaller resident footprint at
        huge theta, certified-approximate bounds), or ``"auto"``.
    prefetch:
        Speculative pipelining of every tenant query's doubling loop:
        ``"next-round"`` overlaps next-round RR generation with this
        round's selection/validation (bit-identical results), ``"off"``
        (default) keeps the serial loop.
    default_deadline:
        Deadline (seconds) applied to queries that do not send one;
        ``None`` means no implicit deadline.
    deadline_grace:
        Extra seconds the handler waits after cancelling a deadline-blown
        query before answering with a degraded response on the worker's
        behalf (covers a worker stuck in non-cooperative code).
    lifetime_budget:
        Server-lifetime spend caps (``max_edges_examined`` /
        ``max_rr_sets`` / ``max_rr_nodes`` axes).  Once cumulative query
        spend crosses a cap, new requests are shed with 429 — the Budget
        machinery driving admission control.
    query_retries:
        How many times a query whose worker crashed (an unexpected,
        non-cooperative failure) is retried on a recovered session before
        a degraded response is returned.
    retry_backoff, retry_jitter, retry_max_total_wait:
        Backoff policy shared by query retries and graph loads.
    breaker_threshold, breaker_cooldown:
        Circuit breaker for repeatedly failing resources (graph loads):
        after ``breaker_threshold`` consecutive failures the breaker opens
        and requests fail fast with a retry-after of ``breaker_cooldown``
        seconds.
    snapshot_dir:
        Directory for per-tenant session snapshots; ``None`` disables
        crash recovery.
    snapshot_every:
        Snapshot a session after every N-th query it serves (1 = every
        query).
    shards:
        When set, every tenant session runs on a persistent
        :class:`~repro.rrsets.shardpool.ShardPool` of this many workers
        (shard-resident RR banks, scatter-gather selection).  Mutually
        exclusive with ``snapshot_dir``: shard-resident pools recover
        through their own journals/checkpoints, not session snapshots.
    spill_dir:
        Root directory for shard spill + checkpoint files; each tenant
        session gets its own subdirectory.  Requires ``shards``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    max_pending: int = 8
    algorithm: str = "subsim"
    eps: float = 0.3
    seed: int = 0
    byte_cap: Optional[int] = None
    tenant_byte_caps: Dict[str, int] = field(default_factory=dict)
    coverage_backend: str = "exact"
    prefetch: str = "off"
    default_deadline: Optional[float] = None
    deadline_grace: float = 2.0
    lifetime_budget: Budget = field(default_factory=Budget)
    query_retries: int = 1
    retry_backoff: float = 0.05
    retry_jitter: float = 0.5
    retry_max_total_wait: float = 10.0
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    snapshot_dir: Optional[str] = None
    snapshot_every: int = 1
    shards: Optional[int] = None
    spill_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.query_retries < 0:
            raise ConfigurationError(
                f"query_retries must be >= 0, got {self.query_retries}"
            )
        if self.snapshot_every < 1:
            raise ConfigurationError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ConfigurationError(
                f"default_deadline must be positive, got {self.default_deadline}"
            )
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}"
            )
        if self.shards is not None and self.snapshot_dir is not None:
            raise ConfigurationError(
                "shards and snapshot_dir are mutually exclusive: "
                "shard-resident sessions recover via shard checkpoints, "
                "not session snapshots"
            )
        if self.spill_dir is not None and self.shards is None:
            raise ConfigurationError("spill_dir requires shards")
        from repro.coverage.backend import COVERAGE_BACKENDS

        if self.coverage_backend not in COVERAGE_BACKENDS:
            raise ConfigurationError(
                f"coverage_backend must be one of "
                f"{', '.join(repr(b) for b in COVERAGE_BACKENDS)}, "
                f"got {self.coverage_backend!r}"
            )
        from repro.engine.prefetch import validate_prefetch_mode

        validate_prefetch_mode(self.prefetch)
        for tenant, cap in self.tenant_byte_caps.items():
            if cap < 1:
                raise ConfigurationError(
                    f"tenant_byte_caps[{tenant!r}] must be >= 1, got {cap}"
                )
