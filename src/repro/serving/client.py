"""Small stdlib client for the query daemon.

:class:`ServeClient` speaks the daemon's JSON protocol over
``http.client`` — no third-party HTTP stack.  Every call returns
``(status_code, payload)``; interpreting shed (429) or degraded responses
is the caller's business, because reacting to them *is* the protocol.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional, Tuple

Response = Tuple[int, Dict[str, Any]]


class ServeClient:
    """One-connection-per-call JSON client for :class:`QueryServer`."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Response:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = {"error": raw.decode("utf-8", errors="replace")}
            return response.status, decoded
        finally:
            connection.close()

    # ------------------------------------------------------------------
    def query(
        self,
        graph: str,
        k: int,
        tenant: str = "default",
        eps: Optional[float] = None,
        deadline_seconds: Optional[float] = None,
    ) -> Response:
        """Submit one ``maximize(k, eps)`` query for ``tenant``."""
        body: Dict[str, Any] = {"graph": graph, "k": int(k), "tenant": tenant}
        if eps is not None:
            body["eps"] = float(eps)
        if deadline_seconds is not None:
            body["deadline_seconds"] = float(deadline_seconds)
        return self._request("POST", "/query", body)

    def delta(
        self,
        graph: str,
        inserts: Optional[Any] = None,
        deletes: Optional[Any] = None,
        updates: Optional[Any] = None,
    ) -> Response:
        """Apply one edge delta to ``graph``; warm banks repair in place.

        ``inserts``/``updates`` are ``(src, dst, prob)`` rows, ``deletes``
        are ``(src, dst)`` rows — the wire shape of
        :meth:`repro.graphs.dynamic.GraphDelta.to_payload`.
        """
        body: Dict[str, Any] = {"graph": graph}
        if inserts:
            body["inserts"] = [
                [int(u), int(v), float(p)] for u, v, p in inserts
            ]
        if deletes:
            body["deletes"] = [[int(u), int(v)] for u, v in deletes]
        if updates:
            body["updates"] = [
                [int(u), int(v), float(p)] for u, v, p in updates
            ]
        return self._request("POST", "/delta", body)

    def health(self) -> Response:
        return self._request("GET", "/healthz")

    def metrics(self) -> Response:
        return self._request("GET", "/metrics")

    def report(self) -> Response:
        return self._request("GET", "/report")
