"""The resilient multi-tenant query daemon.

A :class:`QueryServer` binds a :class:`~repro.serving.registry.GraphRegistry`
to a worker pool and serves ``maximize(k, eps)`` queries over HTTP (stdlib
``ThreadingHTTPServer`` — one thread per connection for request parsing, a
fixed pool of query workers for the actual runs).  The request path is:

1. **handler** — parse + validate, then *admission control*: requests are
   shed with HTTP 429 when the lifetime
   :class:`~repro.runtime.budget.Budget` is spent or when the bounded
   dispatch queue is full.  Admitted jobs are enqueued and the handler
   waits on the job with a hard timeout derived from the request deadline.
2. **worker** — resolves the graph (lazy load behind retry + circuit
   breaker), leases the tenant's session (one lock per session, held for
   query + snapshot, so bank eviction stays strictly between queries), and
   runs the query with the deadline mapped to a wall-clock budget plus a
   cancellation token.  Deadline-blown queries degrade to
   ``status="partial"`` results whose certificates carry
   ``complete=False`` — the server never returns silently-truncated
   answers as complete.
3. **crash recovery** — an unexpected worker failure (an
   :class:`~repro.utils.exceptions.InjectedFault` mid-query, or any bug)
   invalidates the tenant session (its banks may be desynced), retries on
   a session rebuilt from the last good snapshot, and only after
   ``query_retries`` rebuilds answers with an explicit ``degraded``
   response.  Because session entropy is a pure function of
   ``(server seed, tenant, graph)``, the rebuilt session — and a whole
   restarted server — regenerates bit-identical RR banks.

Endpoints: ``POST /query``, ``GET /healthz``, ``GET /metrics`` (server +
per-session counters merged into one snapshot), ``GET /report`` (spend,
sessions, and the last canonical run report per tenant).
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.core.certify import Certificate, partial_certificate
from repro.core.results import IMResult
from repro.observability.registry import MetricsRegistry
from repro.observability.report import build_run_report
from repro.runtime.budget import Budget
from repro.runtime.cancellation import CancellationToken
from repro.serving.admission import AdmissionController
from repro.serving.config import ServerConfig
from repro.serving.faults import ServerFaultInjector
from repro.serving.registry import GraphRegistry
from repro.serving.retry import CircuitOpenError, RetryPolicy
from repro.serving.sessions import SessionManager
from repro.utils.exceptions import (
    ConfigurationError,
    GraphFormatError,
    InjectedFault,
)

_SENTINEL = object()


def _certificate_block(certificate: Certificate) -> Dict[str, Any]:
    return {
        "ratio": float(certificate.ratio),
        "lower_bound": float(certificate.lower_bound),
        "upper_bound": float(certificate.upper_bound),
        "complete": bool(certificate.complete),
    }


def _degraded_certificate() -> Dict[str, Any]:
    """The vacuous certificate of a query that produced no seeds."""
    return {
        "ratio": 0.0,
        "lower_bound": 0.0,
        "upper_bound": float("inf"),
        "complete": False,
    }


class QueryJob:
    """One admitted query travelling from handler to worker and back."""

    def __init__(
        self,
        tenant: str,
        graph_name: str,
        k: int,
        eps: float,
        deadline_seconds: Optional[float],
        arrived: Optional[float] = None,
    ) -> None:
        self.tenant = tenant
        self.graph_name = graph_name
        self.k = k
        self.eps = eps
        self.deadline_seconds = deadline_seconds
        self.arrived = time.monotonic() if arrived is None else arrived
        self.token = CancellationToken()
        self._done = threading.Event()
        self._lock = threading.Lock()
        self.status_code: int = 500
        self.response: Dict[str, Any] = {"error": "no response"}

    def remaining(self) -> Optional[float]:
        """Seconds left until the request deadline (None = no deadline).

        Measured from request *arrival*, so handler stalls (the slow-handler
        fault) and queue time both count against the deadline — the contract
        is end-to-end.
        """
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds - (time.monotonic() - self.arrived)

    def respond(self, status_code: int, response: Dict[str, Any]) -> bool:
        """First responder wins; later calls (an abandoned worker) no-op."""
        with self._lock:
            if self._done.is_set():
                return False
            self.status_code = status_code
            self.response = response
            self._done.set()
            return True

    def wait(self, timeout: Optional[float]) -> bool:
        return self._done.wait(timeout)


class QueryServer:
    """Threaded daemon serving influence-maximization queries."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        registry: Optional[GraphRegistry] = None,
        faults: Optional[ServerFaultInjector] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.metrics = MetricsRegistry()
        self.faults = faults
        self.registry = (
            registry
            if registry is not None
            else GraphRegistry(
                retry=RetryPolicy(
                    backoff=self.config.retry_backoff,
                    jitter=self.config.retry_jitter,
                    max_total_wait=self.config.retry_max_total_wait,
                    seed=self.config.seed,
                ),
                breaker_threshold=self.config.breaker_threshold,
                breaker_cooldown=self.config.breaker_cooldown,
            )
        )
        self.sessions = SessionManager(
            self.config, metrics=self.metrics, faults=faults
        )
        self.admission = AdmissionController(
            self.config.lifetime_budget, metrics=self.metrics
        )
        self._queue: "queue.Queue[Any]" = queue.Queue(
            maxsize=self.config.max_pending
        )
        self._workers: List[threading.Thread] = []
        self._http: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._reports: Dict[str, Dict[str, Any]] = {}
        self._reports_lock = threading.Lock()
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        if self._http is None:
            raise RuntimeError("server is not started")
        return self._http.server_address[0], self._http.server_address[1]

    def start(self) -> "QueryServer":
        if self._started:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, format: str, *args: Any) -> None:
                pass

            def _send(self, status_code: int, payload: Dict[str, Any]) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status_code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:
                try:
                    status_code, payload = server.handle_get(self.path)
                except Exception as exc:  # noqa: BLE001 - last-resort guard
                    status_code, payload = 500, {"error": str(exc)}
                self._send(status_code, payload)

            def do_POST(self) -> None:
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else b""
                try:
                    status_code, payload = server.handle_post(self.path, raw)
                except InjectedFault as exc:
                    server.metrics.inc("serving.handler_crashes")
                    status_code, payload = 500, {
                        "error": "handler_crash",
                        "detail": str(exc),
                    }
                except Exception as exc:  # noqa: BLE001 - last-resort guard
                    status_code, payload = 500, {"error": str(exc)}
                self._send(status_code, payload)

        self._http = ThreadingHTTPServer(
            (self.config.host, self.config.port), Handler
        )
        self._http.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._http.serve_forever, name="serve-http", daemon=True
        )
        self._http_thread.start()
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        self._started = True
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop intake, drain workers, snapshot sessions."""
        if not self._started:
            return
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join(timeout=30.0)
        self._workers = []
        self.sessions.snapshot_all()
        self.sessions.close_all()
        self._started = False

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # HTTP routing (also callable directly, without a socket, in tests)
    # ------------------------------------------------------------------
    def handle_get(self, path: str) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            return 200, {
                "status": "ok",
                "graphs": self.registry.names(),
                "workers": self.config.workers,
                "pending": self._queue.qsize(),
            }
        if path == "/metrics":
            return 200, self.metrics_snapshot()
        if path == "/report":
            return 200, self.report()
        return 404, {"error": f"unknown path {path!r}"}

    def handle_post(self, path: str, raw: bytes) -> Tuple[int, Dict[str, Any]]:
        # Stamp arrival before anything can stall: the deadline contract is
        # end-to-end, so a slow handler burns the request's own deadline.
        arrived = time.monotonic()
        if path not in ("/query", "/delta"):
            return 404, {"error": f"unknown path {path!r}"}
        if self.faults is not None:
            # Slow-handler / handler-crash axis; fires before admission so a
            # delayed request burns its own deadline, not a worker's time.
            self.faults.on_request()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}
        if path == "/delta":
            return self.apply_delta_request(payload)
        return self.submit(payload, arrived=arrived)

    # ------------------------------------------------------------------
    # streaming graph updates
    # ------------------------------------------------------------------
    def apply_delta_request(
        self, payload: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        """Apply one edge delta to a named graph and repair its warm banks.

        Runs in the handler thread (deltas are rare, administrative, and
        must not compete with queries for worker slots).  Every session
        entry serving the graph is locked — in sorted key order, so two
        concurrent deltas cannot deadlock — for the whole mutation, which
        keeps the graph change and each tenant's bank repair atomic with
        respect to in-flight queries.  The graph object is shared by all
        of a name's sessions, so it is mutated exactly once here and the
        per-session repairs run with ``graph_mutated=True``.
        """
        from repro.graphs.dynamic import GraphDelta

        graph_name = payload.get("graph")
        if not isinstance(graph_name, str) or not graph_name:
            return 400, {"error": "'graph' must be a non-empty string"}
        if graph_name not in self.registry:
            return 404, {"error": f"unknown graph {graph_name!r}"}
        spec = {
            key: payload[key]
            for key in ("inserts", "deletes", "updates")
            if key in payload
        }
        if not spec:
            return 400, {
                "error": "delta needs at least one of "
                "'inserts', 'deletes', 'updates'"
            }
        try:
            delta = GraphDelta.from_payload(spec)
        except (GraphFormatError, ConfigurationError, TypeError, ValueError) as exc:
            return 400, {"error": f"invalid delta: {exc}"}
        try:
            graph = self.registry.get(graph_name)
        except CircuitOpenError as exc:
            return 503, {"error": str(exc), "retry_after": exc.retry_after}
        except GraphFormatError as exc:
            self.metrics.inc("serving.graph_load_failures")
            return 500, {"error": "graph_load_failed", "detail": str(exc)}

        entries = sorted(
            (e for e in self.sessions.entries() if e.key[1] == graph_name),
            key=lambda e: e.key,
        )
        acquired = []
        try:
            for entry in entries:
                entry.lock.acquire()
                acquired.append(entry)
            try:
                touched = graph.apply_delta(delta)
            except GraphFormatError as exc:
                return 400, {"error": f"delta rejected: {exc}"}
            sessions_block: Dict[str, Any] = {}
            for entry in entries:
                stats = entry.session.apply_delta(delta, graph_mutated=True)
                sessions_block[entry.key[0]] = {
                    "sets_total": stats["sets_total"],
                    "sets_repaired": stats["sets_repaired"],
                    "dirty_fraction": stats["dirty_fraction"],
                }
        finally:
            for entry in reversed(acquired):
                entry.lock.release()
        self.metrics.inc("serving.deltas_applied")
        return 200, {
            "status": "ok",
            "graph": graph_name,
            "num_changes": int(delta.num_changes),
            "touched_nodes": int(len(touched)),
            "delta_epoch": int(graph.delta_epoch),
            "fingerprint": graph.fingerprint(),
            "sessions": sessions_block,
        }

    # ------------------------------------------------------------------
    # admission + dispatch
    # ------------------------------------------------------------------
    def submit(
        self, payload: Dict[str, Any], arrived: Optional[float] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """Validate, admit, enqueue, and wait out one query request."""
        try:
            job = self._parse(payload, arrived=arrived)
        except ConfigurationError as exc:
            return 400, {"error": str(exc)}
        if job.graph_name not in self.registry:
            return 404, {"error": f"unknown graph {job.graph_name!r}"}

        blocked = self.admission.check()
        if blocked is not None:
            return 429, {
                "error": "shed",
                "reason": f"budget_exhausted:{blocked}",
                "spend": self.admission.spend(),
            }
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self.admission.record_queue_shed()
            return 429, {
                "error": "shed",
                "reason": "queue_full",
                "max_pending": self.config.max_pending,
            }
        self.metrics.inc("serving.admitted")
        self.metrics.set_gauge("serving.queue_depth", self._queue.qsize())

        remaining = job.remaining()
        if remaining is None:
            job.wait(None)
        elif not job.wait(max(remaining, 0.0) + self.config.deadline_grace):
            # The worker is stuck past deadline + grace (non-cooperative
            # code). Cancel it and answer on its behalf; respond() makes a
            # late worker result a no-op.
            job.token.cancel("deadline")
            if not job.wait(self.config.deadline_grace):
                self.metrics.inc("serving.deadline_exceeded")
                self.metrics.inc("serving.degraded")
                job.respond(
                    200,
                    {
                        "status": "degraded",
                        "stop_reason": "deadline_exceeded",
                        "tenant": job.tenant,
                        "graph": job.graph_name,
                        "k": job.k,
                        "seeds": [],
                        "certificate": _degraded_certificate(),
                    },
                )
        return job.status_code, job.response

    def _parse(
        self, payload: Dict[str, Any], arrived: Optional[float] = None
    ) -> QueryJob:
        for fixed in ("algorithm", "seed"):
            if fixed in payload:
                raise ConfigurationError(
                    f"{fixed!r} is fixed by the server configuration; "
                    "per-request overrides would break per-tenant session "
                    "determinism"
                )
        graph_name = payload.get("graph")
        if not isinstance(graph_name, str) or not graph_name:
            raise ConfigurationError("'graph' must be a non-empty string")
        k = payload.get("k")
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ConfigurationError(f"'k' must be a positive integer, got {k!r}")
        eps = payload.get("eps", self.config.eps)
        if not isinstance(eps, (int, float)) or not 0 < float(eps) < 1:
            raise ConfigurationError(f"'eps' must lie in (0, 1), got {eps!r}")
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ConfigurationError("'tenant' must be a non-empty string")
        deadline = payload.get("deadline_seconds", self.config.default_deadline)
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or float(deadline) <= 0
        ):
            raise ConfigurationError(
                f"'deadline_seconds' must be positive, got {deadline!r}"
            )
        return QueryJob(
            tenant=tenant,
            graph_name=graph_name,
            k=int(k),
            eps=float(eps),
            deadline_seconds=None if deadline is None else float(deadline),
            arrived=arrived,
        )

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            try:
                if job is _SENTINEL:
                    return
                self.metrics.set_gauge("serving.queue_depth", self._queue.qsize())
                try:
                    self._execute(job)
                except Exception as exc:  # noqa: BLE001 - workers never die
                    self.metrics.inc("serving.degraded")
                    job.respond(
                        500, {"error": "internal error", "detail": str(exc)}
                    )
            finally:
                self._queue.task_done()

    def _execute(self, job: QueryJob) -> None:
        try:
            graph = self.registry.get(job.graph_name)
        except CircuitOpenError as exc:
            job.respond(
                503, {"error": str(exc), "retry_after": exc.retry_after}
            )
            return
        except GraphFormatError as exc:
            self.metrics.inc("serving.graph_load_failures")
            job.respond(
                500,
                {
                    "error": "graph_load_failed",
                    "detail": str(exc),
                    "attempts": getattr(exc, "attempts", None),
                },
            )
            return

        last_crash: Optional[BaseException] = None
        for attempt in range(self.config.query_retries + 1):
            if attempt > 0:
                self.metrics.inc("serving.retries")
                time.sleep(self.config.retry_backoff * (2.0 ** (attempt - 1)))
            if self.faults is not None:
                try:
                    self.faults.on_worker()
                except InjectedFault as exc:
                    # Worker died between dequeue and execution: nothing
                    # touched the session, but the job still gets retried.
                    self.metrics.inc("serving.worker_crashes")
                    last_crash = exc
                    continue
            remaining = job.remaining()
            if remaining is not None and remaining <= 0:
                self._respond_deadline(job)
                return
            try:
                with self.sessions.lease(
                    job.tenant, job.graph_name, graph
                ) as session:
                    result = session.maximize(
                        job.k,
                        eps=job.eps,
                        budget=(
                            Budget(wall_clock_seconds=remaining)
                            if remaining is not None
                            else None
                        ),
                        cancel=job.token,
                        fault_injector=self.faults,
                    )
            except Exception as exc:  # noqa: BLE001 - crash containment
                # InjectedFault or a genuine bug escaped the run: the
                # session's banks may be desynced, so drop the session and
                # retry against one rebuilt from the last good snapshot.
                self.metrics.inc("serving.worker_crashes")
                self.sessions.invalidate(job.tenant, job.graph_name)
                last_crash = exc
                continue
            self._respond_result(job, graph, session, result)
            return

        self.metrics.inc("serving.degraded")
        job.respond(
            200,
            {
                "status": "degraded",
                "stop_reason": "worker_crash",
                "detail": str(last_crash),
                "tenant": job.tenant,
                "graph": job.graph_name,
                "k": job.k,
                "seeds": [],
                "certificate": _degraded_certificate(),
                "retries": self.config.query_retries,
            },
        )

    def _respond_deadline(self, job: QueryJob) -> None:
        self.metrics.inc("serving.deadline_exceeded")
        self.metrics.inc("serving.degraded")
        job.respond(
            200,
            {
                "status": "degraded",
                "stop_reason": "deadline_exceeded",
                "tenant": job.tenant,
                "graph": job.graph_name,
                "k": job.k,
                "seeds": [],
                "certificate": _degraded_certificate(),
            },
        )

    def _respond_result(
        self, job: QueryJob, graph: Any, session: Any, result: IMResult
    ) -> None:
        self.admission.record_spend(result)
        certificate = partial_certificate(result)
        if result.is_partial:
            self.metrics.inc("serving.partial")
            if result.stop_reason in ("deadline", "cancelled"):
                self.metrics.inc("serving.deadline_exceeded")
        else:
            self.metrics.inc("serving.completed")
        report = build_run_report(
            result,
            graph,
            seed=session.entropy,
            config={"tenant": job.tenant, "graph_name": job.graph_name},
        )
        with self._reports_lock:
            self._reports[f"{job.tenant}/{job.graph_name}"] = report.canonical()
        payload = {
            "status": result.status,
            "stop_reason": result.stop_reason,
            "tenant": job.tenant,
            "graph": job.graph_name,
            "algorithm": result.algorithm,
            "k": result.k,
            "eps": result.eps,
            "seeds": [int(s) for s in result.seeds],
            "num_rr_sets": int(result.num_rr_sets),
            "edges_examined": int(result.edges_examined),
            "runtime_seconds": float(result.runtime_seconds),
            "certificate": _certificate_block(certificate),
            "session": result.extras.get("session", {}),
        }
        backend_cert = result.extras.get("coverage_backend")
        if backend_cert is not None:
            # Present only for non-exact backends, mirroring the CLI
            # payload: exact answers carry no sketch error model.
            payload["coverage_backend"] = dict(backend_cert)
        job.respond(200, payload)

    # ------------------------------------------------------------------
    # observability endpoints
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, Any]:
        """Server counters merged with every live session's registry.

        Built on a *fresh* registry per call, so repeated reads never
        double-count (merging is commutative addition).
        """
        merged = MetricsRegistry()
        merged.merge_snapshot(self.metrics.snapshot())
        for entry in self.sessions.entries():
            merged.merge_snapshot(entry.session.metrics.snapshot())
        return merged.snapshot()

    def report(self) -> Dict[str, Any]:
        with self._reports_lock:
            reports = dict(self._reports)
        return {
            "server": {
                "algorithm": self.config.algorithm,
                "workers": self.config.workers,
                "max_pending": self.config.max_pending,
                "graphs": self.registry.names(),
                "lifetime_budget": self.config.lifetime_budget.as_dict(),
            },
            "spend": self.admission.spend(),
            "sessions": self.sessions.describe(),
            "reports": reports,
        }
