"""Retry-with-backoff and circuit breaking for transient server failures.

:class:`RetryPolicy` is the serving twin of the ``graphs.io`` retry
loaders: bounded attempts, exponential backoff scaled by seeded jitter,
and a **max-total-wait cap** so a pathological retry storm cannot stall a
worker indefinitely.  :class:`CircuitBreaker` sits in front of resources
that fail persistently (a graph file on a dead mount): after a threshold
of consecutive failures it *opens* and fails fast with a retry-after hint
instead of burning a worker per doomed attempt; after a cooldown one
trial call is let through (*half-open*) and success closes it again.

Both are thread-safe and take injectable ``sleep`` / ``clock`` so the
test suite runs instantly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.utils.exceptions import ConfigurationError, ReproError


class CircuitOpenError(ReproError):
    """The circuit breaker is open: fail fast, retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


def _always_transient(exc: BaseException) -> bool:
    return True


@dataclass
class RetryPolicy:
    """Bounded, jittered exponential backoff around a callable.

    ``attempts`` is the *total* number of tries (>= 1).  Attempt ``i``
    sleeps ``backoff * 2**(i-1)`` scaled by a seeded jitter factor in
    ``[1, 1 + jitter]`` before retrying; once cumulative sleep would
    exceed ``max_total_wait`` the policy stops retrying and re-raises —
    the cap that keeps retry storms bounded.  ``transient`` classifies
    which exceptions are worth retrying (others propagate immediately).
    """

    attempts: int = 3
    backoff: float = 0.05
    jitter: float = 0.5
    max_total_wait: Optional[float] = 10.0
    seed: Optional[int] = None
    sleep: Callable[[float], None] = time.sleep
    on_retry: Optional[Callable[[int, BaseException], None]] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ConfigurationError(
                f"attempts must be >= 1, got {self.attempts}"
            )
        if self.backoff < 0 or self.jitter < 0:
            raise ConfigurationError("backoff and jitter must be >= 0")
        if self.max_total_wait is not None and self.max_total_wait < 0:
            raise ConfigurationError(
                f"max_total_wait must be >= 0, got {self.max_total_wait}"
            )
        self._rng = np.random.default_rng(self.seed)

    def call(
        self,
        fn: Callable[[], Any],
        transient: Callable[[BaseException], bool] = _always_transient,
    ) -> Any:
        """Run ``fn``, retrying transient failures under the policy."""
        waited = 0.0
        for attempt in range(1, self.attempts + 1):
            try:
                return fn()
            except Exception as exc:  # noqa: BLE001 - classified below
                delay = self.backoff * (2.0 ** (attempt - 1))
                if self.jitter > 0:
                    delay *= 1.0 + self.jitter * float(self._rng.random())
                out_of_budget = (
                    self.max_total_wait is not None
                    and waited + delay > self.max_total_wait
                )
                if attempt >= self.attempts or not transient(exc) or out_of_budget:
                    raise
                if self.on_retry is not None:
                    self.on_retry(attempt, exc)
                waited += delay
                self.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


class CircuitBreaker:
    """Fail fast after repeated failures; probe again after a cooldown.

    States: *closed* (calls pass through), *open* (calls raise
    :class:`CircuitOpenError` immediately until ``cooldown`` seconds have
    elapsed since the breaker opened), *half-open* (the first call after
    the cooldown is let through as a trial; success closes the breaker,
    failure re-opens it for another cooldown).
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "resource",
    ) -> None:
        if threshold < 1:
            raise ConfigurationError(
                f"threshold must be >= 1, got {threshold}"
            )
        if cooldown < 0:
            raise ConfigurationError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self.cooldown:
                return "half-open"
            return "open"

    def _admit(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        with self._lock:
            if self._opened_at is None:
                return
            elapsed = self._clock() - self._opened_at
            if elapsed < self.cooldown or self._probing:
                raise CircuitOpenError(
                    f"{self.name}: circuit open after {self._failures} "
                    f"consecutive failures",
                    retry_after=max(self.cooldown - elapsed, 0.0),
                )
            # Half-open: let exactly one trial through at a time.
            self._probing = True

    def _record(self, ok: bool) -> None:
        with self._lock:
            self._probing = False
            if ok:
                self._failures = 0
                self._opened_at = None
            else:
                self._failures += 1
                if self._failures >= self.threshold:
                    self._opened_at = self._clock()

    def call(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` under the breaker; may raise :class:`CircuitOpenError`."""
        self._admit()
        try:
            result = fn()
        except CircuitOpenError:
            raise
        except Exception:
            self._record(ok=False)
            raise
        self._record(ok=True)
        return result
