"""Server-side chaos: fault axes for the serving layer.

:class:`ServerFaultInjector` extends the runtime
:class:`~repro.runtime.faults.FaultInjector` with three serving axes:

* ``at_request`` — fires in the HTTP handler before dispatch.  With
  ``mode="delay"`` this is the *slow handler* fault (the handler stalls
  long enough for the request deadline to pass); with ``mode="raise"``
  it simulates a handler crash.
* ``at_worker`` — fires when a worker picks the Nth job up, simulating a
  worker dying between dequeue and query execution.  (A crash *mid*
  query is the inherited ``at_rr_set`` / ``at_edge`` axis: the server
  forwards the injector into ``session.maximize``.)
* ``at_snapshot`` — fires at the Nth session snapshot *write* and,
  instead of raising, truncates the snapshot file to
  ``snapshot_truncate_bytes`` bytes — the crash-during-checkpoint
  scenario the recovery path must refuse to load.

Counting stays event-driven and the injector fires each axis exactly
once, so a chaos test with a fixed seed hits its faults at identical
points every run.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

import numpy as np

from repro.runtime.faults import FaultInjector
from repro.utils.exceptions import ConfigurationError

_SERVER_KINDS = ("request", "worker", "snapshot")


class ServerFaultInjector(FaultInjector):
    """Deterministic fault injection for the query server."""

    def __init__(
        self,
        at_rr_set: Optional[int] = None,
        at_edge: Optional[int] = None,
        at_io: Optional[int] = None,
        *,
        at_request: Optional[int] = None,
        at_worker: Optional[int] = None,
        at_snapshot: Optional[int] = None,
        snapshot_truncate_bytes: int = 64,
        mode: str = "raise",
        delay_seconds: float = 0.01,
        jitter: float = 0.5,
        seed: Optional[int] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        kwargs = {} if sleep is None else {"sleep": sleep}
        super().__init__(
            at_rr_set=at_rr_set,
            at_edge=at_edge,
            at_io=at_io,
            mode=mode,
            delay_seconds=delay_seconds,
            jitter=jitter,
            seed=seed,
            **kwargs,
        )
        for name, value in (
            ("at_request", at_request),
            ("at_worker", at_worker),
            ("at_snapshot", at_snapshot),
        ):
            if value is not None and value < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1 when given, got {value}"
                )
        if snapshot_truncate_bytes < 0:
            raise ConfigurationError(
                "snapshot_truncate_bytes must be >= 0, got "
                f"{snapshot_truncate_bytes}"
            )
        self.snapshot_truncate_bytes = int(snapshot_truncate_bytes)
        self.targets.update(
            {"request": at_request, "worker": at_worker, "snapshot": at_snapshot}
        )
        self.counts.update(dict.fromkeys(_SERVER_KINDS, 0))
        self.fired.update(dict.fromkeys(_SERVER_KINDS, False))
        # The base class drew its per-kind delay factors from a seeded
        # stream; extend the table for the server kinds from a disjoint
        # stream of the same seed so delays stay reproducible.
        rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(1,))
        )
        self._delays.update(
            {
                kind: delay_seconds * (1.0 + jitter * float(rng.random()))
                for kind in _SERVER_KINDS
            }
        )

    # ------------------------------------------------------------------
    def on_request(self) -> None:
        """Record one HTTP request reaching the handler."""
        self._event("request", 1)

    def on_worker(self) -> None:
        """Record one job picked up by a query worker."""
        self._event("worker", 1)

    def on_snapshot(self, path: "os.PathLike[str] | str") -> None:
        """Record one snapshot write; the fault truncates the file.

        Unlike the raising axes this one corrupts state on disk — the
        scenario is a crash mid-checkpoint, and the assertion under test
        is that recovery *refuses* the truncated file and cold-starts
        rather than loading garbage.
        """
        kind = "snapshot"
        before = self.counts[kind]
        self.counts[kind] = before + 1
        target = self.targets[kind]
        if target is None or self.fired[kind]:
            return
        if before < target <= self.counts[kind]:
            self.fired[kind] = True
            with open(path, "r+b") as handle:
                handle.truncate(self.snapshot_truncate_bytes)
