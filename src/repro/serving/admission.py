"""Admission control: load shedding driven by the Budget machinery.

Two gates stand in front of the dispatch queue:

* **Queue pressure** — the dispatch queue is bounded by
  ``ServerConfig.max_pending``; a request that finds it full is shed
  immediately (HTTP 429) instead of waiting.  That check lives in the
  server (it is the queue itself); the controller here only accounts for
  it.
* **Lifetime spend** — :class:`AdmissionController` accumulates the
  machine-independent cost counters of every completed query
  (``edges_examined``, ``num_rr_sets``, RR node mass) and compares them
  against the server's declarative
  :class:`~repro.runtime.budget.Budget`.  Once any capped axis is
  exhausted, *new* requests are shed with a ``budget_exhausted`` reason —
  queries already running are never interrupted by this gate.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.core.results import IMResult
from repro.observability.registry import MetricsRegistry
from repro.runtime.budget import Budget


class AdmissionController:
    """Sheds new work once the server's lifetime budget is spent."""

    def __init__(
        self, budget: Budget, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.budget = budget
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._edges_examined = 0
        self._rr_sets = 0
        self._rr_nodes = 0

    # ------------------------------------------------------------------
    def check(self) -> Optional[str]:
        """The axis name blocking admission, or None when clear.

        ``wall_clock_seconds`` is a per-query concept (it maps to request
        deadlines), so only the three spend axes participate here.
        """
        with self._lock:
            if (
                self.budget.max_edges_examined is not None
                and self._edges_examined >= self.budget.max_edges_examined
            ):
                return "edges_examined"
            if (
                self.budget.max_rr_sets is not None
                and self._rr_sets >= self.budget.max_rr_sets
            ):
                return "rr_sets"
            if (
                self.budget.max_rr_nodes is not None
                and self._rr_nodes >= self.budget.max_rr_nodes
            ):
                return "rr_nodes"
        return None

    def admit(self) -> Optional[str]:
        """Gate one request: count it and return a shed reason or None."""
        blocked = self.check()
        if blocked is None:
            self.metrics.inc("serving.admitted")
            return None
        self.metrics.inc("serving.shed")
        self.metrics.inc("serving.shed_budget")
        return blocked

    def record_queue_shed(self) -> None:
        """Account for a request shed by the bounded dispatch queue."""
        self.metrics.inc("serving.shed")
        self.metrics.inc("serving.shed_queue")

    # ------------------------------------------------------------------
    def record_spend(self, result: IMResult) -> None:
        """Fold one finished query's cost into the lifetime spend."""
        rr_nodes = int(round(result.average_rr_size * result.num_rr_sets))
        with self._lock:
            self._edges_examined += int(result.edges_examined)
            self._rr_sets += int(result.num_rr_sets)
            self._rr_nodes += rr_nodes
        self.metrics.inc("serving.spend_edges", int(result.edges_examined))
        self.metrics.inc("serving.spend_rr_sets", int(result.num_rr_sets))

    def spend(self) -> Dict[str, int]:
        """Current lifetime spend (for ``/report``)."""
        with self._lock:
            return {
                "edges_examined": self._edges_examined,
                "rr_sets": self._rr_sets,
                "rr_nodes": self._rr_nodes,
            }
