"""Per-tenant session ownership, locking, and crash recovery.

Each ``(tenant, graph)`` pair owns one
:class:`~repro.engine.session.QuerySession` whose entropy is a pure
function of ``(server seed, tenant, graph)`` — so a restarted server (or
a session rebuilt after a worker crash) regenerates *bit-identical* RR
banks, and a snapshot-restored warm session is indistinguishable from
one that never went down.

Concurrency: the manager's own lock only guards the session table; every
entry carries a per-session lock that a worker holds for the whole query
(and the post-query snapshot).  Bank eviction runs inside
``end_query`` — under the entry lock — so it stays strictly *between*
queries even when the worker pool is concurrent.

Recovery: sessions snapshot through the atomic
:class:`~repro.runtime.checkpoint.CheckpointStore` after queries.  On
first use of a ``(tenant, graph)`` the manager tries the snapshot; a
truncated or corrupted file raises
:class:`~repro.utils.exceptions.CheckpointError` inside the store's
self-validating load, the manager counts a cold start and serves a fresh
session — it never loads garbage.
"""

from __future__ import annotations

import hashlib
import os
import re
import threading
import zlib
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.engine.session import QuerySession
from repro.graphs.csr import CSRGraph
from repro.observability.registry import MetricsRegistry
from repro.serving.config import ServerConfig
from repro.serving.faults import ServerFaultInjector
from repro.utils.exceptions import CheckpointError

Key = Tuple[str, str]


def _safe(text: str) -> str:
    # Human-readable prefix + crc suffix so distinct tenants that
    # sanitize to the same string cannot share a file.
    return (
        re.sub(r"[^A-Za-z0-9_.-]", "_", text)[:40]
        + f"-{zlib.crc32(text.encode('utf-8')):08x}"
    )


def tenant_entropy(server_seed: int, tenant: str, graph_name: str) -> int:
    """Deterministic session entropy for ``(server seed, tenant, graph)``.

    A keyed hash, not a counter: entropy must not depend on creation
    order, restart count, or which other tenants exist — that independence
    is what makes crash recovery and rebuild-after-crash bit-identical.
    """
    digest = hashlib.blake2b(
        f"{server_seed}:{tenant}:{graph_name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class SessionEntry:
    """One tenant's session plus the lock serializing its queries."""

    __slots__ = ("key", "session", "lock", "queries_snapshotted")

    def __init__(self, key: Key, session: QuerySession) -> None:
        self.key = key
        self.session = session
        self.lock = threading.RLock()
        self.queries_snapshotted = 0


class SessionManager:
    """Owns every tenant session of a server."""

    def __init__(
        self,
        config: ServerConfig,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[ServerFaultInjector] = None,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.faults = faults
        self._entries: Dict[Key, SessionEntry] = {}
        self._lock = threading.Lock()
        if config.snapshot_dir:
            os.makedirs(config.snapshot_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def snapshot_path(self, tenant: str, graph_name: str) -> Optional[str]:
        if not self.config.snapshot_dir:
            return None
        name = f"{_safe(tenant)}__{_safe(graph_name)}.session.npz"
        return os.path.join(self.config.snapshot_dir, name)

    def spill_path(self, tenant: str, graph_name: str) -> Optional[str]:
        """Per-session shard spill directory (tenants never share files)."""
        if not self.config.spill_dir:
            return None
        return os.path.join(
            self.config.spill_dir, f"{_safe(tenant)}__{_safe(graph_name)}"
        )

    # ------------------------------------------------------------------
    def _build(self, tenant: str, graph_name: str, graph: CSRGraph) -> SessionEntry:
        # A tenant-specific byte cap overrides the server-wide default, so
        # one noisy tenant's bank budget can be pinned without starving
        # (or inflating) everyone else's.
        byte_cap = self.config.tenant_byte_caps.get(
            tenant, self.config.byte_cap
        )
        session = QuerySession(
            graph,
            self.config.algorithm,
            seed=tenant_entropy(self.config.seed, tenant, graph_name),
            byte_cap=byte_cap,
            shards=self.config.shards,
            spill_dir=self.spill_path(tenant, graph_name),
            coverage_backend=self.config.coverage_backend,
            prefetch=self.config.prefetch,
        )
        entry = SessionEntry((tenant, graph_name), session)
        path = self.snapshot_path(tenant, graph_name)
        if path and os.path.exists(path):
            try:
                session.restore(path)
                entry.queries_snapshotted = session.queries_served
                self.metrics.inc("serving.sessions_restored")
            except (CheckpointError, OSError):
                # Refuse the snapshot, never load garbage: the entry keeps
                # its fresh (cold) session, which regenerates the identical
                # prefix from the deterministic per-tenant entropy.
                self.metrics.inc("serving.recovery_cold_starts")
        self.metrics.inc("serving.sessions_created")
        return entry

    @contextmanager
    def lease(
        self, tenant: str, graph_name: str, graph: CSRGraph
    ) -> Iterator[QuerySession]:
        """Exclusive access to the tenant's session for one query.

        The per-entry lock is held for the query *and* its snapshot, so a
        concurrent worker can never observe (or trigger eviction in) a
        session mid-query.
        """
        with self._lock:
            entry = self._entries.get((tenant, graph_name))
            if entry is None:
                entry = self._build(tenant, graph_name, graph)
                self._entries[(tenant, graph_name)] = entry
        with entry.lock:
            yield entry.session
            self._maybe_snapshot(entry)

    def _maybe_snapshot(self, entry: SessionEntry) -> None:
        """Snapshot under the entry lock when the interval has elapsed."""
        served = entry.session.queries_served
        if served - entry.queries_snapshotted < self.config.snapshot_every:
            return
        path = self.snapshot_path(*entry.key)
        if path is None:
            return
        entry.session.save(path)
        entry.queries_snapshotted = served
        self.metrics.inc("serving.snapshots")
        if self.faults is not None:
            self.faults.on_snapshot(path)

    # ------------------------------------------------------------------
    def invalidate(self, tenant: str, graph_name: str) -> None:
        """Drop a session whose worker crashed mid-query.

        The in-memory banks may hold a half-extended pool with a desynced
        stream, so the whole session is discarded; the next query rebuilds
        it from the last good snapshot (or cold), both of which regenerate
        the identical prefix.
        """
        with self._lock:
            dropped = self._entries.pop((tenant, graph_name), None)
        if dropped is not None:
            dropped.session.close()
            self.metrics.inc("serving.sessions_invalidated")

    def snapshot_all(self) -> int:
        """Persist sessions with unsnapshotted queries (graceful shutdown).

        Sessions whose snapshot is already current are left alone — never
        rewritten.  That matters beyond efficiency: a snapshot that was
        corrupted *after* its write (torn write, disk fault) must surface
        as a refused restore on the next boot, not be papered over by a
        shutdown-time rewrite.
        """
        with self._lock:
            entries = list(self._entries.values())
        saved = 0
        for entry in entries:
            with entry.lock:
                served = entry.session.queries_served
                if served == entry.queries_snapshotted:
                    continue
                path = self.snapshot_path(*entry.key)
                if path is not None and served:
                    entry.session.save(path)
                    entry.queries_snapshotted = served
                    self.metrics.inc("serving.snapshots")
                    saved += 1
        return saved

    def close_all(self) -> None:
        """Release session resources (shard pools, shared memory) at shutdown."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            with entry.lock:
                entry.session.close()

    # ------------------------------------------------------------------
    def entries(self) -> List[SessionEntry]:
        with self._lock:
            return list(self._entries.values())

    def describe(self) -> List[Dict[str, object]]:
        """JSON-able per-session summary for the ``/report`` endpoint."""
        rows = []
        for entry in self.entries():
            session = entry.session
            rows.append(
                {
                    "tenant": entry.key[0],
                    "graph": entry.key[1],
                    "algorithm": session.algorithm,
                    "queries_served": int(session.queries_served),
                    "sets_generated": session.metrics.value(
                        "bank.sets_generated"
                    ),
                    "sets_reused": session.metrics.value("bank.sets_reused"),
                    "evictions": session.metrics.value("bank.evictions"),
                }
            )
        return rows
