"""Resilient multi-tenant query serving over warm RR banks.

The serving layer turns :class:`~repro.engine.session.QuerySession` into a
long-lived daemon: a named graph registry, per-tenant session ownership, a
worker pool for concurrent ``maximize(k, eps)`` dispatch — and, wrapped
around every request, the resilience contract the ROADMAP's "millions of
users" north star demands:

* **admission control** — a bounded dispatch queue plus lifetime
  :class:`~repro.runtime.budget.Budget` caps shed overload as HTTP 429
  instead of queueing unboundedly;
* **deadlines** — per-request deadlines cancel cooperatively through
  :class:`~repro.runtime.cancellation.CancellationToken` and return
  ``status="partial"`` results carrying a ``complete=False`` certificate
  instead of erroring;
* **retries + circuit breaking** — transient failures (graph loads, a
  crashed worker mid-query) are retried with jittered backoff; persistent
  failures open a breaker that fails fast with a retry-after hint;
* **crash recovery** — sessions snapshot through
  :class:`~repro.runtime.checkpoint.CheckpointStore` after queries, so a
  restarted server resumes warm banks bit-identically; a truncated or
  corrupted snapshot is refused and the tenant cold-starts (never loads
  garbage).

See ``docs/ARCHITECTURE.md`` (Serving section) and the failure-modes table
in ``docs/ROBUSTNESS.md``.
"""

from repro.serving.admission import AdmissionController
from repro.serving.client import ServeClient
from repro.serving.config import ServerConfig
from repro.serving.faults import ServerFaultInjector
from repro.serving.registry import GraphRegistry
from repro.serving.retry import CircuitBreaker, CircuitOpenError, RetryPolicy
from repro.serving.server import QueryServer
from repro.serving.sessions import SessionManager, tenant_entropy

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CircuitOpenError",
    "GraphRegistry",
    "QueryServer",
    "RetryPolicy",
    "ServeClient",
    "ServerConfig",
    "ServerFaultInjector",
    "SessionManager",
    "tenant_entropy",
]
