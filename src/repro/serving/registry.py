"""Named graph registry with resilient lazy loading.

The daemon serves queries against *named* graphs.  A name maps either to
an already-built :class:`~repro.graphs.csr.CSRGraph` (registered
in-process, e.g. by tests and the load harness) or to a path loaded
lazily on first use.  Loads go through the shared
:class:`~repro.serving.retry.RetryPolicy` (transient filesystem faults
are retried with jittered, capped backoff) and a per-name
:class:`~repro.serving.retry.CircuitBreaker` (a persistently failing
path fails fast with a retry-after instead of stalling a worker per
request).
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Tuple

from repro.graphs import io, weights
from repro.graphs.csr import CSRGraph
from repro.serving.retry import CircuitBreaker, RetryPolicy
from repro.utils.exceptions import ConfigurationError, GraphFormatError


def _transient_load_failure(exc: BaseException) -> bool:
    """The ``graphs.io`` error contract: only OSError causes are transient."""
    return isinstance(exc, GraphFormatError) and isinstance(
        exc.__cause__, OSError
    )


class GraphRegistry:
    """Thread-safe name -> graph mapping with lazy, guarded loading."""

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
    ) -> None:
        self._retry = retry if retry is not None else RetryPolicy()
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._graphs: Dict[str, CSRGraph] = {}
        self._paths: Dict[str, Tuple[str, Optional[str], int]] = {}
        #: source-file mtime (ns) captured when a path-backed graph was
        #: loaded; :meth:`get` re-stats on every access so a replaced file
        #: is noticed instead of the stale cached graph being served forever.
        self._mtimes: Dict[str, Optional[int]] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def add_graph(self, name: str, graph: CSRGraph) -> None:
        """Register an already-built graph under ``name``."""
        with self._lock:
            self._graphs[name] = graph
            self._paths.pop(name, None)

    def add_path(
        self,
        name: str,
        path: str,
        weight_scheme: Optional[str] = None,
        seed: int = 0,
    ) -> None:
        """Register a graph file to be loaded lazily on first use.

        ``weight_scheme`` (e.g. ``"wc"``, ``"uniform:0.01"``) is applied
        after loading with :func:`repro.graphs.weights.apply_scheme`.
        """
        with self._lock:
            self._paths[name] = (path, weight_scheme, seed)
            self._graphs.pop(name, None)
            self._breakers[name] = CircuitBreaker(
                threshold=self._breaker_threshold,
                cooldown=self._breaker_cooldown,
                name=f"graph {name!r}",
            )

    def names(self) -> List[str]:
        with self._lock:
            return sorted(set(self._graphs) | set(self._paths))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._graphs or name in self._paths

    # ------------------------------------------------------------------
    def get(self, name: str) -> CSRGraph:
        """The named graph, loading (with retry + breaker) if needed.

        Path-backed names re-validate their source file on *every* access:
        when the file has been replaced since the cached load (a different
        ``st_mtime_ns``), the stale graph is dropped and the new file is
        loaded — in-process mutations of a still-current graph (e.g. a
        ``/delta`` application) are untouched, because those never change
        the file.

        Raises :class:`ConfigurationError` for unknown names,
        :class:`~repro.serving.retry.CircuitOpenError` while the name's
        breaker is open, and :class:`GraphFormatError` when loading
        ultimately fails.
        """
        with self._lock:
            graph = self._graphs.get(name)
            spec = self._paths.get(name)
            breaker = self._breakers.get(name)
            known_mtime = self._mtimes.get(name)
        if graph is not None:
            if spec is None:
                return graph
            if self._stat_ns(spec[0]) == known_mtime:
                return graph
            with self._lock:
                # Drop only the exact object we validated: a racing reload
                # may already have installed the fresh graph.
                if self._graphs.get(name) is graph:
                    self._graphs.pop(name)
        if spec is None:
            raise ConfigurationError(f"unknown graph {name!r}")
        path, scheme, seed = spec

        def load() -> Tuple[CSRGraph, Optional[int]]:
            # Stat *before* reading: if the file is replaced mid-load the
            # recorded mtime mismatches on the next access and the graph
            # is reloaded then, rather than being trusted stale.
            mtime = self._stat_ns(path)
            loaded = self._retry.call(
                lambda: self._load(path, scheme, seed),
                transient=_transient_load_failure,
            )
            return loaded, mtime

        graph, mtime = breaker.call(load) if breaker is not None else load()
        with self._lock:
            # Another thread may have raced the load; first write wins so
            # every caller sees one graph object (and one sampler cache).
            existing = self._graphs.get(name)
            if existing is not None:
                return existing
            self._graphs[name] = graph
            self._mtimes[name] = mtime
            return graph

    @staticmethod
    def _stat_ns(path: str) -> Optional[int]:
        try:
            return os.stat(path).st_mtime_ns
        except OSError:
            return None

    @staticmethod
    def _load(path: str, scheme: Optional[str], seed: int) -> CSRGraph:
        # load_graph_auto prefers (and maintains) a binary sidecar for
        # text edge lists, so a restarted server skips the re-parse.
        graph = io.load_graph_auto(path)
        if scheme:
            graph = weights.apply_scheme(graph, scheme, seed=seed)
        return graph
