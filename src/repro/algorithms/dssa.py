"""D-SSA — Dynamic Stop-and-Stare [34], with the post-[24]/[33] fix.

D-SSA removes SSA's explicit stare phase: each round doubles one pool used
for selection (``R1``) while an equal-sized *independent* pool (``R2``)
re-estimates the selected seeds.  The round stops when the optimistic
selection-side estimate agrees with the independent one:

    I_1 = n * Cov_R1(S) / theta      (biased upward: S was fitted to R1)
    I_2 = n * Cov_R2(S) / theta      (unbiased: R2 independent of S)
    stop when Cov_R2(S) >= Lambda  and  I_1 <= (1 + eps_agree) * I_2

Huang et al. [24] showed the original analysis of this rule over-claims
and Nguyen et al.'s D-SSA-Fix [33] restores the approximation (but not the
efficiency) guarantee.  Following the same playbook as our SSA: the
agreement rule drives early stopping with ``eps_agree = eps / 2``, while a
hard cap at OPIM-C's unconditional ``theta_max`` guarantees
``(1 - 1/e - eps)`` with probability ``1 - delta`` regardless of how the
adaptive rule behaves.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.bounds.thresholds import theta_max_opimc
from repro.core.results import IMResult
from repro.engine.schedule import fallback_seeds
from repro.utils.exceptions import ExecutionInterrupted


class DSSA(IMAlgorithm):
    """Dynamic Stop-and-Stare with a worst-case cap."""

    name = "d-ssa"

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        n = self.graph.n
        eps_agree = eps / 2.0
        # Minimum independent coverage before the agreement test is
        # meaningful (the Lambda of the D-SSA papers, eps/3-parameterised).
        e3 = eps / 3.0
        lambda_min = (
            (2.0 + 2.0 * e3 / 3.0)
            * (math.log(3.0 / delta) + math.log(max(math.log2(max(n, 2)), 1.0)))
            / (e3 * e3)
        )
        theta_cap = theta_max_opimc(n, k, eps, delta)

        bank1 = self._bank("dssa.r1")
        bank2 = self._bank("dssa.r2")
        backend = self._coverage_backend(theta_hint=theta_cap)

        theta = max(1, int(math.ceil(lambda_min)))
        theta = min(theta, theta_cap)
        seeds = []
        rounds = 0
        agreed = False
        served = 0
        try:
            while True:
                rounds += 1
                view1 = bank1.ensure(theta)
                view2 = bank2.ensure(theta)
                served = view1.num_rr
                greedy = backend.max_coverage(
                    view1, select=k, track_upper_bound=False
                )
                seeds = greedy.seeds
                cov1 = greedy.coverage
                cov2 = backend.coverage(view2, seeds)
                if cov2 >= lambda_min and cov2 > 0:
                    if cov1 / cov2 <= 1.0 + eps_agree:
                        agreed = True
                        break
                if theta >= theta_cap:
                    break
                theta = min(2 * theta, theta_cap)
        except ExecutionInterrupted as exc:
            if not seeds:
                pool = bank1.pool
                seeds = fallback_seeds(
                    pool if pool.num_rr else None, k, backend=backend
                )
            return self._partial_result(
                seeds, k, eps, delta,
                generators=(bank1, bank2),
                reason=exc.reason,
                rounds=rounds,
                agreed=agreed,
            )

        return self._result_from(
            seeds,
            k,
            eps,
            delta,
            generators=(bank1, bank2),
            rounds=rounds,
            agreed=agreed,
            theta=served,
        )
