"""D-SSA — Dynamic Stop-and-Stare [34], with the post-[24]/[33] fix.

D-SSA removes SSA's explicit stare phase: each round doubles one pool used
for selection (``R1``) while an equal-sized *independent* pool (``R2``)
re-estimates the selected seeds.  The round stops when the optimistic
selection-side estimate agrees with the independent one:

    I_1 = n * Cov_R1(S) / theta      (biased upward: S was fitted to R1)
    I_2 = n * Cov_R2(S) / theta      (unbiased: R2 independent of S)
    stop when Cov_R2(S) >= Lambda  and  I_1 <= (1 + eps_agree) * I_2

Huang et al. [24] showed the original analysis of this rule over-claims
and Nguyen et al.'s D-SSA-Fix [33] restores the approximation (but not the
efficiency) guarantee.  Following the same playbook as our SSA: the
agreement rule drives early stopping with ``eps_agree = eps / 2``, while a
hard cap at OPIM-C's unconditional ``theta_max`` guarantees
``(1 - 1/e - eps)`` with probability ``1 - delta`` regardless of how the
adaptive rule behaves.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.bounds.thresholds import theta_max_opimc
from repro.core.results import IMResult
from repro.coverage.greedy import max_coverage_greedy
from repro.rrsets.collection import RRCollection
from repro.utils.exceptions import ExecutionInterrupted


class DSSA(IMAlgorithm):
    """Dynamic Stop-and-Stare with a worst-case cap."""

    name = "d-ssa"

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        n = self.graph.n
        eps_agree = eps / 2.0
        # Minimum independent coverage before the agreement test is
        # meaningful (the Lambda of the D-SSA papers, eps/3-parameterised).
        e3 = eps / 3.0
        lambda_min = (
            (2.0 + 2.0 * e3 / 3.0)
            * (math.log(3.0 / delta) + math.log(max(math.log2(max(n, 2)), 1.0)))
            / (e3 * e3)
        )
        theta_cap = theta_max_opimc(n, k, eps, delta)

        gen1 = self._new_generator()
        gen2 = self._new_generator()
        pool1 = RRCollection(n)
        pool2 = RRCollection(n)

        theta = max(1, int(math.ceil(lambda_min)))
        theta = min(theta, theta_cap)
        seeds = []
        rounds = 0
        agreed = False
        try:
            while True:
                rounds += 1
                pool1.extend_to(theta, gen1, rng)
                pool2.extend_to(theta, gen2, rng)
                greedy = max_coverage_greedy(pool1, select=k, track_upper_bound=False)
                seeds = greedy.seeds
                cov1 = greedy.coverage
                cov2 = pool2.coverage(seeds)
                if cov2 >= lambda_min and cov2 > 0:
                    if cov1 / cov2 <= 1.0 + eps_agree:
                        agreed = True
                        break
                if theta >= theta_cap:
                    break
                theta = min(2 * theta, theta_cap)
        except ExecutionInterrupted as exc:
            if not seeds and pool1.num_rr:
                seeds = max_coverage_greedy(
                    pool1, select=k, track_upper_bound=False
                ).seeds
            return self._partial_result(
                seeds, k, eps, delta,
                generators=(gen1, gen2),
                reason=exc.reason,
                rounds=rounds,
                agreed=agreed,
            )

        return self._result_from(
            seeds,
            k,
            eps,
            delta,
            generators=(gen1, gen2),
            rounds=rounds,
            agreed=agreed,
            theta=pool1.num_rr,
        )
