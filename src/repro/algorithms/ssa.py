"""SSA — Stop-and-Stare (Nguyen et al. [34]) with the SSA-Fix guarantees.

The "stop-and-stare" loop alternates between a *selection* pool that doubles
until the greedy solution's coverage clears a minimum threshold ``Lambda1``,
and a *stare* (validation) phase that estimates the selected set's influence
on **independent** RR sets drawn until ``Lambda2`` of them are covered.  The
run stops when the optimistic selection-side estimate is confirmed by the
independent one: ``n * cov / theta <= (1 + eps1) * I_validate``.

Huang et al. [24] showed the original analysis over-claimed; following their
SSA-Fix we (a) use the conservative epsilon split ``eps1 = eps2 = eps3 =
eps / 4`` — which satisfies the requirement ``eps1 + eps2 + eps1*eps2 +
(1 - 1/e) * eps3 <= eps`` for all ``eps < 1`` — and (b) cap the schedule at
OPIM-C's unconditional ``theta_max`` so a failed validation loop still
terminates with the worst-case guarantee.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.bounds.thresholds import theta_max_opimc
from repro.core.results import IMResult
from repro.engine.schedule import fallback_seeds
from repro.utils.exceptions import ExecutionInterrupted


class SSA(IMAlgorithm):
    """Stop-and-Stare with the [24] fix."""

    name = "ssa"
    #: cursor-style take() consumes sets one at a time — not shardable
    supports_shards = False

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        n = self.graph.n
        e1 = e2 = e3 = eps / 4.0
        delta_work = delta / 3.0  # selection / validation / cap union bound

        lambda1 = 1.0 + (1.0 + e1) * (1.0 + e2) * (2.0 + 2.0 * e3 / 3.0) * math.log(
            3.0 / delta_work
        ) / (e3 * e3)
        lambda2 = 1.0 + (1.0 + e2) * (2.0 + 2.0 * e2 / 3.0) * math.log(
            3.0 / delta_work
        ) / (e2 * e2)
        theta_cap = theta_max_opimc(n, k, eps, delta)

        bank_sel = self._bank("ssa.select")
        bank_val = self._bank("ssa.validate")
        backend = self._coverage_backend(theta_hint=theta_cap)
        theta = max(1, int(math.ceil(lambda1)))
        theta = min(theta, theta_cap)

        seeds = []
        rounds = 0
        validated = False
        served = 0
        stare_base = 0  # cursor into the validation bank's stream
        try:
            while True:
                rounds += 1
                view = bank_sel.ensure(theta)
                served = view.num_rr
                greedy = backend.max_coverage(
                    view, select=k, track_upper_bound=False
                )
                seeds = greedy.seeds
                if greedy.coverage >= lambda1:
                    estimate, drawn = self._stare(
                        seeds, lambda2, theta_cap, bank_val, stare_base
                    )
                    stare_base += drawn
                    if estimate is not None:
                        selection_estimate = n * greedy.coverage / view.num_rr
                        if selection_estimate <= (1.0 + e1) * estimate:
                            validated = True
                            break
                if theta >= theta_cap:
                    break  # worst-case sample size reached: guarantee holds anyway
                theta = min(2 * theta, theta_cap)
        except ExecutionInterrupted as exc:
            if not seeds:
                pool = bank_sel.pool
                seeds = fallback_seeds(
                    pool if pool.num_rr else None, k, backend=backend
                )
            return self._partial_result(
                seeds, k, eps, delta,
                generators=(bank_sel, bank_val),
                reason=exc.reason,
                rounds=rounds,
                validated=validated,
            )

        return self._result_from(
            seeds,
            k,
            eps,
            delta,
            generators=(bank_sel, bank_val),
            rounds=rounds,
            validated=validated,
            theta=served,
        )

    def _stare(self, seeds, lambda2, cap, bank, start):
        """Sequential validation: sample until ``lambda2`` RR sets are covered.

        Consumes the validation bank's stream one set at a time starting at
        position ``start`` (the cursor the selection loop accumulates across
        stare calls, so a warm bank replays the same segments a cold run
        draws).  Returns ``(estimate, drawn)`` where the estimate is
        ``n * covered / T`` — or None when the sampling budget ``cap`` is
        exhausted first (validation failure).
        """
        seed_mask = np.zeros(self.graph.n, dtype=bool)
        seed_mask[list(seeds)] = True
        covered = 0
        drawn = 0
        while covered < lambda2:
            if drawn >= cap:
                return None, drawn
            rr = bank.take(start + drawn)
            drawn += 1
            if seed_mask[np.asarray(rr)].any():
                covered += 1
        return self.graph.n * covered / drawn, drawn
