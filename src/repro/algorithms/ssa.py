"""SSA — Stop-and-Stare (Nguyen et al. [34]) with the SSA-Fix guarantees.

The "stop-and-stare" loop alternates between a *selection* pool that doubles
until the greedy solution's coverage clears a minimum threshold ``Lambda1``,
and a *stare* (validation) phase that estimates the selected set's influence
on **independent** RR sets drawn until ``Lambda2`` of them are covered.  The
run stops when the optimistic selection-side estimate is confirmed by the
independent one: ``n * cov / theta <= (1 + eps1) * I_validate``.

Huang et al. [24] showed the original analysis over-claimed; following their
SSA-Fix we (a) use the conservative epsilon split ``eps1 = eps2 = eps3 =
eps / 4`` — which satisfies the requirement ``eps1 + eps2 + eps1*eps2 +
(1 - 1/e) * eps3 <= eps`` for all ``eps < 1`` — and (b) cap the schedule at
OPIM-C's unconditional ``theta_max`` so a failed validation loop still
terminates with the worst-case guarantee.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.bounds.thresholds import theta_max_opimc
from repro.core.results import IMResult
from repro.coverage.greedy import max_coverage_greedy
from repro.rrsets.collection import RRCollection
from repro.utils.exceptions import ExecutionInterrupted


class SSA(IMAlgorithm):
    """Stop-and-Stare with the [24] fix."""

    name = "ssa"

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        n = self.graph.n
        e1 = e2 = e3 = eps / 4.0
        delta_work = delta / 3.0  # selection / validation / cap union bound

        lambda1 = 1.0 + (1.0 + e1) * (1.0 + e2) * (2.0 + 2.0 * e3 / 3.0) * math.log(
            3.0 / delta_work
        ) / (e3 * e3)
        lambda2 = 1.0 + (1.0 + e2) * (2.0 + 2.0 * e2 / 3.0) * math.log(
            3.0 / delta_work
        ) / (e2 * e2)
        theta_cap = theta_max_opimc(n, k, eps, delta)

        gen_select = self._new_generator()
        gen_validate = self._new_generator()
        pool = RRCollection(n)
        theta = max(1, int(math.ceil(lambda1)))
        theta = min(theta, theta_cap)

        seeds = []
        rounds = 0
        validated = False
        try:
            while True:
                rounds += 1
                pool.extend_to(theta, gen_select, rng)
                greedy = max_coverage_greedy(pool, select=k, track_upper_bound=False)
                seeds = greedy.seeds
                if greedy.coverage >= lambda1:
                    estimate = self._stare(
                        seeds, lambda2, theta_cap, gen_validate, rng
                    )
                    if estimate is not None:
                        selection_estimate = n * greedy.coverage / pool.num_rr
                        if selection_estimate <= (1.0 + e1) * estimate:
                            validated = True
                            break
                if theta >= theta_cap:
                    break  # worst-case sample size reached: guarantee holds anyway
                theta = min(2 * theta, theta_cap)
        except ExecutionInterrupted as exc:
            if not seeds and pool.num_rr:
                seeds = max_coverage_greedy(
                    pool, select=k, track_upper_bound=False
                ).seeds
            return self._partial_result(
                seeds, k, eps, delta,
                generators=(gen_select, gen_validate),
                reason=exc.reason,
                rounds=rounds,
                validated=validated,
            )

        return self._result_from(
            seeds,
            k,
            eps,
            delta,
            generators=(gen_select, gen_validate),
            rounds=rounds,
            validated=validated,
            theta=pool.num_rr,
        )

    def _stare(self, seeds, lambda2, cap, generator, rng):
        """Sequential validation: sample until ``lambda2`` RR sets are covered.

        Returns the influence estimate ``n * lambda2 / T`` or None when the
        sampling budget ``cap`` is exhausted first (validation failure).
        """
        seed_set = set(seeds)
        covered = 0
        drawn = 0
        while covered < lambda2:
            if drawn >= cap:
                return None
            rr = generator.generate(rng)
            drawn += 1
            if any(node in seed_set for node in rr):
                covered += 1
        return self.graph.n * covered / drawn
