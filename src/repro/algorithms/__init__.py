"""Influence-maximization algorithms.

The paper's contributions and every baseline it compares against:

* :class:`OPIMC` — Tang et al.'s online-processing algorithm [37]; pass
  ``generator_cls=SubsimICGenerator`` to obtain the paper's **SUBSIM**
  configuration (OPIM-C with subset-sampling RR generation).
* :class:`HIST` — the paper's Hit-and-Stop algorithm (Algorithms 4/7/8);
  again parameterised by the RR generator ("HIST" vs "HIST+SUBSIM").
* :class:`IMM` [38], :class:`TIMPlus` [39], :class:`SSA` [34]-with-[24]'s
  fix — the vanilla-generation baselines.
* :class:`GreedyMonteCarlo` — Kempe et al.'s original greedy with CELF
  lazy evaluation (tiny graphs only; the sanity baseline).
* :mod:`~repro.algorithms.heuristics` — degree, degree-discount, random.
"""

from repro.algorithms.base import IMAlgorithm
from repro.algorithms.borgs import BorgsRIS
from repro.algorithms.dssa import DSSA
from repro.algorithms.greedy_mc import GreedyMonteCarlo
from repro.algorithms.heuristics import DegreeDiscount, DegreeTopK, RandomSeeds
from repro.algorithms.hist import HIST, IMSentinelPhase, SentinelSetPhase
from repro.algorithms.imm import IMM
from repro.algorithms.opimc import OPIMC
from repro.algorithms.pagerank import PageRankSeeds
from repro.algorithms.ssa import SSA
from repro.algorithms.tim import TIMPlus

__all__ = [
    "BorgsRIS",
    "DSSA",
    "DegreeDiscount",
    "DegreeTopK",
    "GreedyMonteCarlo",
    "HIST",
    "IMAlgorithm",
    "IMM",
    "IMSentinelPhase",
    "OPIMC",
    "PageRankSeeds",
    "RandomSeeds",
    "SSA",
    "SentinelSetPhase",
    "TIMPlus",
]
