"""PageRank-based seed heuristic.

A classic IM baseline (cf. the benchmarking study [7]): rank nodes by
PageRank on the *transpose* graph — influence flows along edges, so a node
is influential when many influenceable nodes point *from* it — and take the
top k.  No approximation guarantee; included for quality comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.core.results import IMResult
from repro.graphs.csr import CSRGraph
from repro.utils.exceptions import ConfigurationError, ExecutionInterrupted


def pagerank_scores(
    graph: CSRGraph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iters: int = 200,
    reverse: bool = False,
    check=None,
) -> np.ndarray:
    """Power-iteration PageRank over the graph's edge *structure*.

    ``reverse=True`` ranks on the transposed graph (mass flows against edge
    direction), which is the variant relevant to influence: a node
    collecting reverse mass is one whose forward cascades cover many nodes.
    Dangling mass is redistributed uniformly.  Edge probabilities are
    ignored — this is a purely structural heuristic.
    """
    if not 0.0 < damping < 1.0:
        raise ConfigurationError(f"damping must lie in (0, 1), got {damping}")
    n = graph.n
    if reverse:
        indptr, indices = graph.in_indptr, graph.in_indices
        degree = graph.in_degree().astype(np.float64)
    else:
        indptr, indices = graph.out_indptr, graph.out_indices
        degree = graph.out_degree().astype(np.float64)

    # src[j] owns the j-th structural edge of the chosen direction.
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    rank = np.full(n, 1.0 / n)
    dangling = degree == 0.0
    safe_degree = np.where(dangling, 1.0, degree)
    for _ in range(max_iters):
        if check is not None:
            check()  # cooperative cancellation between power iterations
        contrib = rank / safe_degree
        new_rank = np.zeros(n)
        np.add.at(new_rank, indices, contrib[src])
        dangling_mass = rank[dangling].sum()
        new_rank = (1.0 - damping) / n + damping * (
            new_rank + dangling_mass / n
        )
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return rank


class PageRankSeeds(IMAlgorithm):
    """Top-k nodes by reverse PageRank (structural influence heuristic)."""

    name = "pagerank"
    uses_rr_sets = False
    supports_shards = False

    def __init__(self, graph: CSRGraph, damping: float = 0.85) -> None:
        super().__init__(graph)
        self.damping = damping

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        try:
            scores = pagerank_scores(
                self.graph, damping=self.damping, reverse=True, check=self._check
            )
        except ExecutionInterrupted as exc:
            return self._partial_result(
                [], k, eps, delta, reason=exc.reason, damping=self.damping
            )
        seeds = np.argsort(scores, kind="stable")[-k:][::-1].tolist()
        return self._result_from(seeds, k, eps, delta, damping=self.damping)
