"""IMM — Influence Maximization via Martingales (Tang et al. [38]).

Two phases sharing one RR pool:

1. **Sampling** estimates a lower bound ``LB`` on ``OPT_k`` by statistical
   testing: for guesses ``x = n/2^i`` it grows the pool to
   ``lambda' / x`` sets and accepts the first guess whose greedy coverage
   estimate clears ``(1 + eps') x``.
2. **Selection** grows the pool to ``lambda* / LB`` sets and runs greedy.

The martingale analysis lets the second phase reuse the first phase's RR
sets despite the adaptive stopping.  IMM's sample count scales with
``ln C(n, k)``, which is why the paper finds it orders of magnitude slower
than the optimistic algorithms; ``max_rr_sets`` exists so that experiment
sweeps can cap the faithful-but-expensive schedule and report the cap.
"""

from __future__ import annotations

import math
from typing import Optional, Type

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.bounds.thresholds import imm_lambda_prime, imm_lambda_star
from repro.core.results import IMResult
from repro.engine.schedule import fallback_seeds
from repro.graphs.csr import CSRGraph
from repro.rrsets.base import RRGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.utils.exceptions import ExecutionInterrupted


class IMM(IMAlgorithm):
    """Martingale-based IM with near-optimal sample complexity."""

    name = "imm"

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
        max_rr_sets: Optional[int] = None,
    ) -> None:
        super().__init__(graph, generator_cls)
        if max_rr_sets is not None and max_rr_sets < 1:
            raise ValueError("max_rr_sets must be positive when given")
        self.max_rr_sets = max_rr_sets

    def _cap(self, theta: int) -> int:
        return theta if self.max_rr_sets is None else min(theta, self.max_rr_sets)

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        n = self.graph.n
        eps_prime = math.sqrt(2.0) * eps
        lam_prime = imm_lambda_prime(n, k, eps_prime, delta)
        lam_star = imm_lambda_star(n, k, eps, delta)

        # Both phases share one pool — the martingale analysis allows it —
        # so IMM is a single bank whose prefix both phases select over.
        bank = self._bank("imm.pool")
        # Worst case is phase 2 at LB = 1 (lambda* sets), capped.
        backend = self._coverage_backend(
            theta_hint=self._cap(int(math.ceil(lam_star)))
        )

        # Phase 1: estimate LB <= OPT_k by doubling guesses downward.
        lower_bound = 1.0
        capped = False
        theta_p1 = 0
        last_greedy = None
        try:
            max_i = max(1, int(math.ceil(math.log2(n))) - 1)
            for i in range(1, max_i + 1):
                x = n / (2.0 ** i)
                theta_i = self._cap(int(math.ceil(lam_prime / x)))
                capped = capped or theta_i == self.max_rr_sets
                theta_p1 = max(theta_p1, theta_i)
                view = bank.ensure(theta_i)
                greedy = backend.max_coverage(
                    view, select=k, track_upper_bound=False
                )
                last_greedy = greedy
                estimate = n * greedy.coverage / view.num_rr
                if estimate >= (1.0 + eps_prime) * x:
                    lower_bound = estimate / (1.0 + eps_prime)
                    break
                if capped:
                    lower_bound = max(lower_bound, estimate / (1.0 + eps_prime))
                    break

            # Phase 2: final pool size and selection.  Phase 1's sets are
            # never discarded, so the effective size is at least theta_p1.
            theta = self._cap(int(math.ceil(lam_star / lower_bound)))
            capped = capped or theta == self.max_rr_sets
            view = bank.ensure(max(theta, theta_p1))
            greedy = backend.max_coverage(
                view, select=k, track_upper_bound=False
            )
            last_greedy = greedy
        except ExecutionInterrupted as exc:
            # Degrade to the last completed greedy pass instead of rerunning
            # it over the interrupted pool.
            pool = bank.pool if bank.pool.num_rr else None
            seeds = fallback_seeds(pool, k, last=last_greedy, backend=backend)
            return self._partial_result(
                seeds, k, eps, delta,
                generators=(bank,),
                reason=exc.reason,
                opt_lower_bound=lower_bound,
                capped=capped,
            )

        return self._result_from(
            greedy.seeds,
            k,
            eps,
            delta,
            generators=(bank,),
            opt_lower_bound=lower_bound,
            capped=capped,
            coverage=greedy.coverage,
        )
