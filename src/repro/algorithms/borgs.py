"""Borgs et al.'s original RIS algorithm [8] — the foundation of the field.

The 2014 breakthrough that every later algorithm refines: keep generating
random RR sets until the **total number of edges examined** crosses a
threshold ``tau = O(k (m + n) log n / eps^3)``, then run greedy max
coverage.  Counting edge work rather than RR sets is what makes the
analysis go through (RR-set sizes are wildly variable), and it is also why
the later count-based algorithms (TIM+, IMM, OPIM-C) beat it in practice —
the ``eps^-3`` and the constant are enormous.

The threshold constant follows the paper's statement; since a faithful
``tau`` is astronomically large for realistic parameters, ``scale_tau``
(default 1.0) lets experiments dial it down explicitly — the run records
the faithful value alongside what was used.
"""

from __future__ import annotations

import math
from typing import Optional, Type

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.core.results import IMResult
from repro.engine.schedule import fallback_seeds
from repro.graphs.csr import CSRGraph
from repro.rrsets.base import RRGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.utils.exceptions import ConfigurationError, ExecutionInterrupted


class BorgsRIS(IMAlgorithm):
    """Reverse Influence Sampling with the edge-budget stopping rule."""

    name = "borgs-ris"
    #: cursor-style take() consumes sets one at a time — not shardable
    supports_shards = False

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
        scale_tau: float = 1.0,
        max_rr_sets: Optional[int] = 500_000,
    ) -> None:
        super().__init__(graph, generator_cls)
        if scale_tau <= 0:
            raise ConfigurationError("scale_tau must be positive")
        self.scale_tau = scale_tau
        self.max_rr_sets = max_rr_sets

    def edge_budget(self, k: int, eps: float) -> int:
        """The paper's tau: ``c k (m + n) log n / eps^3`` (c = 1 here)."""
        n, m = self.graph.n, self.graph.m
        tau = k * (m + n) * math.log(max(n, 2)) / eps**3
        return max(1, int(math.ceil(tau * self.scale_tau)))

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        bank = self._bank("borgs.pool")
        backend = self._coverage_backend(theta_hint=self.max_rr_sets)
        budget = self.edge_budget(k, eps)
        faithful_budget = self.edge_budget(k, eps) / self.scale_tau

        # Consume the bank one set at a time until the edge budget is
        # exhausted.  ``counters_at`` prices the prefix consumed so far
        # (exact: take() marks every set), so a warm bank replays the same
        # stopping point a cold run reaches.  Every RR set costs at least
        # one unit (the root draw) so the loop terminates even on edgeless
        # graphs.
        idx = 0
        try:
            while bank.counters_at(idx).edges_examined < budget:
                bank.take(idx)
                idx += 1
                if bank.counters_at(idx).edges_examined == 0:
                    # Edgeless graph: RR sets are singletons; a handful gives
                    # the (trivial) coverage signal greedy needs.
                    if idx >= 3 * k:
                        break
                if self.max_rr_sets is not None and idx >= self.max_rr_sets:
                    break
        except ExecutionInterrupted as exc:
            view = bank.view(idx)
            seeds = fallback_seeds(
                view if view.num_rr else None, k, backend=backend
            )
            return self._partial_result(
                seeds, k, eps, delta,
                generators=(bank,),
                reason=exc.reason,
                edge_budget=budget,
            )

        greedy = backend.max_coverage(
            bank.view(idx), select=k, track_upper_bound=False
        )
        return self._result_from(
            greedy.seeds,
            k,
            eps,
            delta,
            generators=(bank,),
            edge_budget=budget,
            faithful_edge_budget=faithful_budget,
            budget_scaled=self.scale_tau != 1.0,
        )
