"""Shared machinery for IM algorithms: parameter handling and accounting."""

from __future__ import annotations

import math
import time
from typing import Optional, Type

import numpy as np

from repro.core.results import IMResult
from repro.graphs.csr import CSRGraph
from repro.rrsets.base import RRGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


class IMAlgorithm:
    """Base class for influence-maximization algorithms.

    Subclasses implement :meth:`_select` and set :attr:`name`.  The public
    :meth:`run` validates parameters (``delta`` defaults to the customary
    ``1/n``), seeds the RNG, times the run, and folds the generator counters
    into the returned :class:`~repro.core.results.IMResult`.
    """

    name = "base"
    #: set False for algorithms that do not generate RR sets (heuristics)
    uses_rr_sets = True

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
    ) -> None:
        if graph.n < 1:
            raise ConfigurationError("graph must contain at least one node")
        self.graph = graph
        self.generator_cls = generator_cls

    # ------------------------------------------------------------------
    def run(
        self,
        k: int,
        eps: float = 0.1,
        delta: Optional[float] = None,
        seed: SeedLike = None,
    ) -> IMResult:
        """Select ``k`` seeds with a ``(1 - 1/e - eps)`` guarantee w.p. ``1 - delta``.

        ``delta`` defaults to ``1/n``; ``seed`` accepts anything
        :func:`repro.utils.rng.as_generator` does.
        """
        n = self.graph.n
        if not 1 <= k <= n:
            raise ConfigurationError(f"k must lie in [1, n={n}], got {k}")
        if eps <= 0 or eps >= 1:
            raise ConfigurationError(f"eps must lie in (0, 1), got {eps}")
        if delta is None:
            delta = 1.0 / n if n > 1 else 0.5
        if not 0 < delta < 1:
            raise ConfigurationError(f"delta must lie in (0, 1), got {delta}")
        rng = as_generator(seed)
        begin = time.perf_counter()
        result = self._select(k, eps, delta, rng)
        result.runtime_seconds = time.perf_counter() - begin
        return result

    # ------------------------------------------------------------------
    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        raise NotImplementedError

    def _new_generator(self) -> RRGenerator:
        return self.generator_cls(self.graph)

    def _result_from(
        self,
        seeds,
        k: int,
        eps: float,
        delta: float,
        generators=(),
        **extras,
    ) -> IMResult:
        """Assemble an IMResult, merging counters from ``generators``."""
        num_sets = sum(g.counters.sets_generated for g in generators)
        total_nodes = sum(g.counters.nodes_added for g in generators)
        return IMResult(
            algorithm=self.name,
            seeds=list(seeds),
            k=k,
            eps=eps,
            delta=delta,
            runtime_seconds=0.0,  # filled in by run()
            num_rr_sets=num_sets,
            average_rr_size=(total_nodes / num_sets) if num_sets else 0.0,
            edges_examined=sum(g.counters.edges_examined for g in generators),
            rng_draws=sum(g.counters.rng_draws for g in generators),
            extras=extras,
        )

    @staticmethod
    def _doubling_iterations(theta0: int, theta_max: int) -> int:
        """Number of doubling rounds from ``theta0`` to ``theta_max``."""
        if theta_max <= theta0:
            return 1
        return int(math.ceil(math.log2(theta_max / theta0)))
