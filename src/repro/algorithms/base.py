"""Shared machinery for IM algorithms: parameter handling and accounting."""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING, Optional, Type, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rrsets.shardpool import ShardPool

import numpy as np

from repro.core.results import IMResult
from repro.engine.session import BankProvider
from repro.graphs.csr import CSRGraph
from repro.observability.registry import MetricsRegistry
from repro.observability.trace import NULL_TRACER, PhaseTracer
from repro.rrsets.base import RRGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.runtime.budget import Budget
from repro.runtime.cancellation import CancellationToken
from repro.runtime.checkpoint import (
    CheckpointStore,
    coerce_store,
    counters_from_dict,
)
from repro.runtime.control import RunControl
from repro.runtime.faults import FaultInjector
from repro.utils.exceptions import (
    CheckpointError,
    ConfigurationError,
    ExecutionInterrupted,
)
from repro.utils.rng import SeedLike, as_generator


class IMAlgorithm:
    """Base class for influence-maximization algorithms.

    Subclasses implement :meth:`_select` and set :attr:`name`.  The public
    :meth:`run` validates parameters (``delta`` defaults to the customary
    ``1/n``), seeds the RNG, times the run, and folds the generator counters
    into the returned :class:`~repro.core.results.IMResult`.

    Every algorithm is an *interruptible* computation: ``run`` accepts a
    :class:`~repro.runtime.budget.Budget` and a
    :class:`~repro.runtime.cancellation.CancellationToken`, and when either
    fires mid-sampling the algorithm degrades to a ``status="partial"``
    result (best-so-far seeds, honest counters and bounds) instead of
    raising or hanging.  Algorithms with checkpoint support (HIST, OPIM-C
    and their generator variants) additionally persist round-boundary state
    to ``checkpoint`` and can ``resume`` a killed run bit-identically.
    """

    name = "base"
    #: set False for algorithms that do not generate RR sets (heuristics)
    uses_rr_sets = True
    #: set False for algorithms incompatible with the sharded worker
    #: runtime (cursor-style ``take()`` consumers, non-RR heuristics)
    supports_shards = True
    #: set False for algorithms whose selection shape the sketch coverage
    #: backend cannot serve (sentinel masks, excluded-node greedy — HIST);
    #: an explicit ``coverage_backend="sketch"`` is then rejected and
    #: session-level ``"sketch"``/``"auto"`` defaults degrade to exact
    supports_sketch_coverage = True

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
    ) -> None:
        if graph.n < 1:
            raise ConfigurationError("graph must contain at least one node")
        self.graph = graph
        self.generator_cls = generator_cls
        self._control: Optional[RunControl] = None
        self._banks: Optional[BankProvider] = None
        self._resume_state = None
        self._batch_size = 1
        self._workers = 1
        self._batched_mode: Optional[str] = None
        self._coverage_spec = None
        self._coverage_used = None
        self._prefetch_spec: Optional[str] = None

    # ------------------------------------------------------------------
    def run(
        self,
        k: int,
        eps: float = 0.1,
        delta: Optional[float] = None,
        seed: SeedLike = None,
        *,
        budget: Optional[Budget] = None,
        cancel: Optional[CancellationToken] = None,
        checkpoint: Union[None, str, CheckpointStore] = None,
        checkpoint_every: int = 1,
        resume: bool = False,
        fault_injector: Optional[FaultInjector] = None,
        batch_size: int = 1,
        workers: int = 1,
        batched_mode: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: bool = False,
        banks: Optional[BankProvider] = None,
        shards: Union[None, int, "ShardPool"] = None,
        spill_dir: Optional[str] = None,
        coverage_backend: Optional[str] = None,
        prefetch: Optional[str] = None,
    ) -> IMResult:
        """Select ``k`` seeds with a ``(1 - 1/e - eps)`` guarantee w.p. ``1 - delta``.

        ``delta`` defaults to ``1/n``; ``seed`` accepts anything
        :func:`repro.utils.rng.as_generator` does.

        Runtime parameters (all keyword-only):

        * ``budget`` — resource caps; expiry yields a ``status="partial"``
          result instead of an exception.
        * ``cancel`` — cooperative cancellation token, same degradation.
        * ``checkpoint`` — path (or ready store) where round-boundary state
          is persisted every ``checkpoint_every`` rounds; cleared when the
          run completes.
        * ``resume`` — continue from the checkpoint if one exists (requires
          ``checkpoint``); the resumed run replays to a bit-identical final
          answer.
        * ``fault_injector`` — deterministic fault hooks for tests.
        * ``batch_size`` / ``workers`` — RR-generation strategy: the
          defaults (both 1) replay the sequential per-set loop with its
          exact RNG schedule (bit-identical seeds, counters and
          checkpoints); ``batch_size > 1`` enables the vectorized batched
          engine, ``workers > 1`` shards batches across processes.  Both
          sample the identical RR-set distribution.  ``workers > 1`` is
          incompatible with ``resume`` (resuming replays the recorded
          RNG schedule, which fan-out streams do not follow).
        * ``batched_mode`` — override the vectorized kernel the batched
          engine runs (``"ic"``, ``"subsim"`` or ``"lt"``); ``None`` (the
          default) keeps the generator's own kernel.  The override must be
          one of the generator's ``supported_batched_modes`` and only
          matters when ``batch_size > 1`` or ``workers > 1``.
        * ``metrics`` — a :class:`~repro.observability.registry
          .MetricsRegistry` that the run populates (counters, RR-size
          histogram, pool-memory gauge); its snapshot lands in
          ``result.extras["metrics"]``.
        * ``trace`` — enable structured phase tracing; the phase tree
          (wall time, counter deltas, pool memory per span) lands in
          ``result.extras["trace"]``.  Implies an internal registry when
          ``metrics`` is not supplied.
        * ``banks`` — a session :class:`~repro.engine.session.BankProvider`
          whose RR banks this run should draw from (set by
          :class:`~repro.engine.session.QuerySession`).  When omitted, a
          transient provider around the run's own RNG is built internally
          and the run replays the historical RNG schedule bit-identically.
          Incompatible with ``checkpoint``/``resume`` — session durability
          goes through ``QuerySession.save``.
        * ``shards`` — run RR generation and seed selection on a persistent
          sharded worker runtime: an integer spins up a private
          :class:`~repro.rrsets.shardpool.ShardPool` for this run (torn
          down afterwards), a ready pool is reused as-is.  The RR pools
          stay resident in the workers; selection is scatter-gather with a
          provably identical seed sequence.  Incompatible with
          ``workers``/``checkpoint``/``resume``/``banks`` (sharded
          *sessions* are built through ``QuerySession(shards=...)``).
        * ``spill_dir`` — directory for worker pool spill and crash-recovery
          checkpoints (only with an integer ``shards``).
        * ``coverage_backend`` — how seed selection reads the RR pool:
          ``"exact"`` (the default; inverted-CSR exact marginal gains,
          bit-identical to the historical path), ``"sketch"`` (per-node
          HyperLogLog coverage sketches with an error-adaptive precision
          ladder — the inverted index never materializes, trading a
          certified approximation band for a much smaller resident
          footprint at huge theta), or ``"auto"`` (sketch only when the
          expected pool size clears
          :data:`~repro.coverage.backend.AUTO_SKETCH_THETA`).  ``None``
          inherits the session provider's default (``"exact"`` outside a
          session).  A sketch-mode run records its approximation
          certificate in ``result.extras["coverage_backend"]``.
        * ``prefetch`` — speculative pipelining of the doubling loop:
          ``"next-round"`` issues the round-``i+1`` pool extensions while
          round ``i``'s select/validate runs (bit-identical results; see
          :mod:`repro.engine.prefetch`), ``"off"`` keeps the serial loop.
          ``None`` inherits the session provider's default (``"off"``
          outside a session).  Incompatible with ``checkpoint``/``resume``
          — speculation skips the synchronous round save points.
        """
        n = self.graph.n
        if not 1 <= k <= n:
            raise ConfigurationError(f"k must lie in [1, n={n}], got {k}")
        if eps <= 0 or eps >= 1:
            raise ConfigurationError(f"eps must lie in (0, 1), got {eps}")
        if delta is None:
            delta = 1.0 / n if n > 1 else 0.5
        if not 0 < delta < 1:
            raise ConfigurationError(f"delta must lie in (0, 1), got {delta}")

        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if batched_mode is not None:
            from repro.rrsets.batched import BATCHED_MODES

            supported = getattr(
                self.generator_cls, "supported_batched_modes", ()
            )
            if batched_mode not in BATCHED_MODES:
                raise ConfigurationError(
                    f"batched_mode must be one of "
                    f"{', '.join(repr(m) for m in BATCHED_MODES)}, "
                    f"got {batched_mode!r}"
                )
            if batched_mode not in supported:
                offered = ", ".join(repr(m) for m in supported) or "none"
                raise ConfigurationError(
                    f"generator {self.generator_cls.__name__} supports "
                    f"batched modes {offered}, not {batched_mode!r}"
                )
        if coverage_backend is not None:
            from repro.coverage.backend import COVERAGE_BACKENDS

            if coverage_backend not in COVERAGE_BACKENDS:
                raise ConfigurationError(
                    f"coverage_backend must be one of "
                    f"{', '.join(repr(b) for b in COVERAGE_BACKENDS)}, "
                    f"got {coverage_backend!r}"
                )
            if (
                coverage_backend == "sketch"
                and not self.supports_sketch_coverage
            ):
                raise ConfigurationError(
                    f"{self.name} requires exact per-set coverage "
                    "(sentinel masks / excluded-node selection) and cannot "
                    "run with coverage_backend='sketch'"
                )
            if coverage_backend == "sketch" and (
                checkpoint is not None or resume
            ):
                raise ConfigurationError(
                    "coverage_backend='sketch' cannot be combined with "
                    "checkpoint/resume: the precision ladder's state is "
                    "not part of round checkpoints"
                )
        if prefetch is not None:
            from repro.engine.prefetch import validate_prefetch_mode

            validate_prefetch_mode(prefetch)
            if prefetch != "off" and (checkpoint is not None or resume):
                raise ConfigurationError(
                    "prefetch='next-round' cannot be combined with "
                    "checkpoint/resume: speculative extensions skip the "
                    "synchronous round save points"
                )
        store = coerce_store(checkpoint, every=checkpoint_every)
        if banks is not None and (store is not None or resume):
            raise ConfigurationError(
                "run-level checkpoint/resume cannot be combined with a "
                "session bank provider; persist the session itself with "
                "QuerySession.save()"
            )
        if resume and store is None:
            raise ConfigurationError("resume=True requires a checkpoint path")
        if resume and workers > 1:
            raise ConfigurationError(
                "workers > 1 cannot resume a checkpoint: resuming replays "
                "the recorded sequential RNG schedule, which multiprocess "
                "fan-out streams do not follow; rerun with workers=1"
            )
        if shards is not None:
            if not self.supports_shards:
                raise ConfigurationError(
                    f"{self.name} does not support the sharded worker "
                    "runtime (shards=None required)"
                )
            if banks is not None:
                raise ConfigurationError(
                    "shards cannot be combined with a session bank "
                    "provider; build the session with "
                    "QuerySession(shards=...) instead"
                )
            if store is not None or resume:
                raise ConfigurationError(
                    "shards cannot be combined with checkpoint/resume: "
                    "shard workers keep their own crash-recovery "
                    "checkpoints (spill_dir)"
                )
            if workers > 1:
                raise ConfigurationError(
                    "shards and workers are alternative execution "
                    "strategies; pick one"
                )
        elif spill_dir is not None:
            raise ConfigurationError("spill_dir requires shards")
        run_metrics = metrics if metrics is not None else MetricsRegistry()
        tracer = PhaseTracer(run_metrics) if trace else None
        control = RunControl(
            budget=budget,
            token=cancel,
            faults=fault_injector,
            checkpoint=store,
            metrics=run_metrics,
            tracer=tracer,
        )
        self._control = control
        self._resume_state = None
        self._batch_size = int(batch_size)
        self._workers = int(workers)
        self._batched_mode = batched_mode
        self._coverage_spec = coverage_backend
        self._coverage_used = None
        self._prefetch_spec = prefetch
        if resume and store.exists():
            meta, pools = store.load()
            self._validate_resume(meta, k, eps, delta)
            # Replay the killed run's pushed metrics (coverage counters,
            # RR-size histograms) so the resumed run's report is
            # bit-identical to an uninterrupted one; the runtime.* budget
            # tallies stay at zero — budgets are per-process.
            if "metrics" in meta:
                run_metrics.restore_own_state(
                    meta["metrics"], skip_prefixes=("runtime.",)
                )
            self._resume_state = (meta, pools)

        rng = as_generator(seed)
        own_pool = None
        if banks is not None:
            provider = banks
        elif shards is not None:
            from repro.rrsets.shardpool import ShardPool

            if isinstance(shards, ShardPool):
                pool = shards
            else:
                own_pool = pool = ShardPool(
                    self.graph, int(shards), spill_dir=spill_dir,
                    metrics=run_metrics,
                )
            provider = BankProvider(self.graph, rng=rng, shard_pool=pool)
        else:
            provider = BankProvider.transient(self.graph, rng)
        provider.begin_query(control)
        self._banks = provider
        control.start()
        begin = time.perf_counter()
        try:
            with control.tracer.phase("run"):
                result = self._select(k, eps, delta, rng)
        except ExecutionInterrupted as exc:
            # Safety net: even an algorithm without bespoke degradation
            # honors the contract — no exception, no hang, an honest
            # (possibly empty) partial result.
            result = self._result_from(
                [],
                k,
                eps,
                delta,
                status="partial",
                stop_reason=getattr(exc, "reason", None) or str(exc),
            )
        finally:
            provider.end_query()
            if own_pool is not None:
                own_pool.close()
            self._banks = None
            self._resume_state = None
            self._control = None
            self._batch_size = 1
            self._workers = 1
            self._batched_mode = None
            self._coverage_spec = None
            self._prefetch_spec = None
        result.runtime_seconds = time.perf_counter() - begin
        if (
            self._coverage_used is not None
            and self._coverage_used.name != "exact"
        ):
            # Only non-exact backends leave a trace in the result: the
            # certificate feeds report.canonical(), and the exact default
            # must stay bit-identical to the historical output.  (Keyed
            # "coverage_backend", not "coverage" — IMM already reports its
            # greedy coverage count under that name.)
            result.extras.setdefault(
                "coverage_backend", self._coverage_used.certificate()
            )
        self._coverage_used = None
        if control.active or control.checkpoint is not None:
            result.extras.setdefault("runtime", control.snapshot())
        if metrics is not None:
            result.extras.setdefault("metrics", run_metrics.snapshot())
        if tracer is not None:
            result.extras.setdefault("trace", tracer.to_dict())
        if store is not None and result.status == "complete":
            store.clear()
        return result

    # ------------------------------------------------------------------
    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        raise NotImplementedError

    def _new_generator(self) -> RRGenerator:
        gen = self.generator_cls(self.graph)
        if self._control is not None:
            self._control.adopt_generator(gen)
        gen.batch_size = self._batch_size
        gen.workers = self._workers
        if self._batched_mode is not None:
            gen.batched_mode = self._batched_mode
        return gen

    def _bank(self, role: str, *, stop_mask=None, reusable: bool = True):
        """The RR bank serving ``role`` for the current run.

        Inside a default run this is a fresh single-run bank on the run's
        RNG (bit-identical to the pre-bank pools); inside a session it may
        be a warm bank whose prefix previous queries already generated.
        """
        return self._banks.get(
            role,
            self._new_generator,
            stop_mask=stop_mask,
            reusable=reusable,
            batch_size=self._batch_size,
            workers=self._workers,
            batched_mode=self._batched_mode,
        )

    def _check(self) -> None:
        """Poll cancellation/deadline from a non-RR sampling loop."""
        if self._control is not None:
            self._control.check()

    def _phase(self, name: str):
        """Span context for one algorithm phase (no-op when not tracing)."""
        if self._control is None:
            return NULL_TRACER.phase(name)
        return self._control.tracer.phase(name)

    @property
    def _metrics(self) -> Optional[MetricsRegistry]:
        """The run's registry, or ``None`` outside ``run()``."""
        return self._control.metrics if self._control is not None else None

    def _coverage_backend(self, theta_hint: Optional[int] = None):
        """Resolve this run's coverage backend (see :mod:`repro.coverage`).

        The run-level ``coverage_backend`` argument wins; absent that, a
        session bank provider may carry a default; absent both, exact.
        ``theta_hint`` (the worst-case pool size, known before sampling)
        drives the ``"auto"`` tier choice.  The resolved backend is
        remembered so ``run()`` can attach its certificate to the result.
        """
        from repro.coverage.backend import resolve_backend

        spec = self._coverage_spec
        if spec is None and self._banks is not None:
            spec = getattr(self._banks, "coverage_backend", None)
        backend = resolve_backend(
            spec,
            theta_hint=theta_hint,
            allow_sketch=self.supports_sketch_coverage,
            metrics=self._metrics,
        )
        self._coverage_used = backend
        return backend

    def _prefetch_controller(self):
        """This run's speculative-pipeline controller, or ``None``.

        Resolution mirrors :meth:`_coverage_backend`: the run-level
        ``prefetch`` argument wins; absent that, a session bank provider
        may carry a default; absent both, off.  A fresh controller is
        built per call because one controller serves exactly one
        ``run_doubling`` invocation.
        """
        spec = self._prefetch_spec
        if spec is None and self._banks is not None:
            spec = getattr(self._banks, "prefetch", None)
        if spec is None or spec == "off":
            return None
        from repro.engine.prefetch import PrefetchController

        return PrefetchController(metrics=self._metrics)

    @property
    def _has_checkpoint(self) -> bool:
        """True when a round-checkpoint store is attached to this run."""
        return self._control is not None and self._control.checkpoint is not None

    # ------------------------------------------------------------------
    # checkpoint / resume plumbing
    # ------------------------------------------------------------------
    def _validate_resume(self, meta: dict, k: int, eps: float, delta: float) -> None:
        """Refuse to resume a checkpoint taken by a different query."""
        expected = {
            "algorithm": self.name,
            "n": self.graph.n,
            "k": k,
        }
        for key, want in expected.items():
            got = meta.get(key)
            if got != want:
                raise CheckpointError(
                    f"checkpoint {key}={got!r} does not match this run's {want!r}"
                )
        for key, want in (("eps", eps), ("delta", delta)):
            got = meta.get(key)
            if got is None or abs(float(got) - want) > 1e-12:
                raise CheckpointError(
                    f"checkpoint {key}={got!r} does not match this run's {want}"
                )

    def _take_resume_state(self):
        """Consume the pending resume state (one-shot)."""
        state, self._resume_state = self._resume_state, None
        return state

    def _query_meta(self, k: int, eps: float, delta: float) -> dict:
        return {
            "algorithm": self.name,
            "n": self.graph.n,
            "k": k,
            "eps": eps,
            "delta": delta,
        }

    def _round_checkpoint(
        self, rng: np.random.Generator, meta: dict, pools: dict
    ) -> bool:
        """Persist round-boundary state (RNG snapshot taken at call time)."""
        control = self._control
        if control is None or control.checkpoint is None:
            return False

        def builder():
            payload = dict(meta)
            payload["rng_state"] = rng.bit_generator.state
            payload["metrics"] = control.metrics.own_state()
            return payload, pools

        return control.maybe_checkpoint(builder)

    @staticmethod
    def _restore_generator(gen: RRGenerator, counters_payload: dict) -> None:
        """Load checkpointed counters into a fresh generator."""
        gen.counters = counters_from_dict(counters_payload)
        gen._reported_edges = gen.counters.edges_examined

    @staticmethod
    def _restore_rng(rng: np.random.Generator, state) -> None:
        try:
            rng.bit_generator.state = state
        except (TypeError, ValueError, KeyError) as exc:
            raise CheckpointError(
                f"cannot restore RNG state from checkpoint: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def _result_from(
        self,
        seeds,
        k: int,
        eps: float,
        delta: float,
        generators=(),
        status: str = "complete",
        stop_reason: Optional[str] = None,
        **extras,
    ) -> IMResult:
        """Assemble an IMResult, merging counters from ``generators``."""
        num_sets = sum(g.counters.sets_generated for g in generators)
        total_nodes = sum(g.counters.nodes_added for g in generators)
        return IMResult(
            algorithm=self.name,
            seeds=list(seeds),
            k=k,
            eps=eps,
            delta=delta,
            runtime_seconds=0.0,  # filled in by run()
            num_rr_sets=num_sets,
            average_rr_size=(total_nodes / num_sets) if num_sets else 0.0,
            edges_examined=sum(g.counters.edges_examined for g in generators),
            rng_draws=sum(g.counters.rng_draws for g in generators),
            status=status,
            stop_reason=stop_reason,
            extras=extras,
        )

    def _partial_result(
        self,
        seeds,
        k: int,
        eps: float,
        delta: float,
        generators=(),
        reason: Optional[str] = None,
        **extras,
    ) -> IMResult:
        """Best-so-far result after a budget expiry or cancellation."""
        if reason is None and self._control is not None:
            reason = self._control.stop_reason
        return self._result_from(
            list(seeds)[:k],
            k,
            eps,
            delta,
            generators=generators,
            status="partial",
            stop_reason=reason or "interrupted",
            **extras,
        )

    @staticmethod
    def _doubling_iterations(theta0: int, theta_max: int) -> int:
        """Number of doubling rounds from ``theta0`` to ``theta_max``."""
        if theta_max <= theta0:
            return 1
        return int(math.ceil(math.log2(theta_max / theta0)))
