"""Kempe et al.'s original greedy [26] with CELF lazy evaluation [21].

The sanity baseline: pick seeds one by one, each time choosing the node with
the largest Monte-Carlo-estimated marginal spread.  CELF exploits
submodularity — a node's previously computed marginal gain upper-bounds its
current one — to skip most re-evaluations, but each evaluation still costs
``num_simulations`` cascades, so this is only practical on small graphs.
It exists to cross-check the RR-based algorithms' seed quality in tests.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.core.results import IMResult
from repro.estimation.montecarlo import simulate_ic, simulate_lt
from repro.graphs.csr import CSRGraph
from repro.utils.exceptions import ConfigurationError, ExecutionInterrupted


class GreedyMonteCarlo(IMAlgorithm):
    """CELF-accelerated greedy over Monte-Carlo spread estimates."""

    name = "greedy-mc"
    uses_rr_sets = False
    supports_shards = False

    def __init__(
        self,
        graph: CSRGraph,
        num_simulations: int = 200,
        model: str = "ic",
    ) -> None:
        super().__init__(graph)
        if num_simulations < 1:
            raise ConfigurationError("num_simulations must be >= 1")
        if model not in ("ic", "lt"):
            raise ConfigurationError(f"model must be 'ic' or 'lt', got {model!r}")
        self.num_simulations = num_simulations
        self.model = model
        self._simulate = simulate_ic if model == "ic" else simulate_lt

    def _spread(self, seeds: List[int], rng: np.random.Generator) -> float:
        total = 0
        for _ in range(self.num_simulations):
            self._check()
            total += self._simulate(self.graph, seeds, rng)
        return total / self.num_simulations

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        n = self.graph.n
        seeds: List[int] = []
        current_spread = 0.0
        evaluations = 0

        try:
            # CELF heap of (-stale_gain, node, round_evaluated).
            heap = []
            for v in range(n):
                gain = self._spread([v], rng)
                evaluations += 1
                heapq.heappush(heap, (-gain, v, 0))

            for round_idx in range(1, k + 1):
                while True:
                    neg_gain, v, evaluated_at = heapq.heappop(heap)
                    if evaluated_at == round_idx:
                        seeds.append(v)
                        current_spread += -neg_gain
                        break
                    fresh = self._spread(seeds + [v], rng) - current_spread
                    evaluations += 1
                    heapq.heappush(heap, (-fresh, v, round_idx))
        except ExecutionInterrupted as exc:
            return self._partial_result(
                seeds, k, eps, delta,
                reason=exc.reason,
                spread_estimate=current_spread,
                evaluations=evaluations,
            )

        result = self._result_from(
            seeds,
            k,
            eps,
            delta,
            spread_estimate=current_spread,
            evaluations=evaluations,
        )
        return result
