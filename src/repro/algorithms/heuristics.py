"""Guarantee-free heuristic baselines.

The IM literature's classic quick-and-dirty selectors; they anchor the
quality comparisons (a principled algorithm must beat these) and serve as
cheap seed sources in examples.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.core.results import IMResult
from repro.utils.exceptions import ExecutionInterrupted


class DegreeTopK(IMAlgorithm):
    """Select the ``k`` nodes with the highest out-degree."""

    name = "degree"
    uses_rr_sets = False
    supports_shards = False

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        # Single-shot: one poll suffices — a fired budget/cancellation is
        # turned into an empty partial by the run() safety net.
        self._check()
        out_deg = self.graph.out_degree()
        # argsort is ascending; take the tail, then reverse for rank order.
        seeds = np.argsort(out_deg, kind="stable")[-k:][::-1].tolist()
        return self._result_from(seeds, k, eps, delta)


class DegreeDiscount(IMAlgorithm):
    """Degree-discount heuristic (Chen et al., KDD'09).

    After selecting a seed, each out-neighbor ``v`` discounts its effective
    degree by the expected overlap: ``dd(v) = d(v) - 2 t(v) - (d(v) - t(v))
    * t(v) * p``, where ``t(v)`` counts already-selected in-neighbors of
    ``v`` and ``p`` is a representative propagation probability (the graph's
    mean edge probability unless overridden).
    """

    name = "degree-discount"
    uses_rr_sets = False
    supports_shards = False

    def __init__(self, graph, p: float = None) -> None:  # type: ignore[assignment]
        super().__init__(graph)
        if p is None:
            p = float(graph.out_probs.mean()) if graph.m else 0.01
        self.p = p

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        graph = self.graph
        degree = graph.out_degree().astype(np.float64)
        dd = degree.copy()
        t = np.zeros(graph.n, dtype=np.float64)
        selected = np.zeros(graph.n, dtype=bool)
        seeds: List[int] = []
        try:
            for _ in range(k):
                self._check()
                dd_masked = np.where(selected, -np.inf, dd)
                s = int(np.argmax(dd_masked))
                selected[s] = True
                seeds.append(s)
                neighbors, _ = graph.out_neighbors(s)
                for v in neighbors:
                    if selected[v]:
                        continue
                    t[v] += 1.0
                    dd[v] = (
                        degree[v]
                        - 2.0 * t[v]
                        - (degree[v] - t[v]) * t[v] * self.p
                    )
        except ExecutionInterrupted as exc:
            return self._partial_result(
                seeds, k, eps, delta, reason=exc.reason, p=self.p
            )
        return self._result_from(seeds, k, eps, delta, p=self.p)


class RandomSeeds(IMAlgorithm):
    """Uniformly random seeds — the floor any method must clear."""

    name = "random"
    uses_rr_sets = False
    supports_shards = False

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        self._check()
        seeds = rng.choice(self.graph.n, size=k, replace=False).tolist()
        return self._result_from(seeds, k, eps, delta)
