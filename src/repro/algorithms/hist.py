"""HIST — Hit-and-Stop (paper Section 4, Algorithms 4, 7 and 8).

In high-influence networks the bottleneck of every RR-based IM algorithm is
the *size* of each RR set, not their number.  HIST splits the budget:

1. :class:`SentinelSetPhase` (Algorithm 7) cheaply finds a small sentinel
   set ``S_b*`` with the loose guarantee
   ``I(S_b*) >= (1 - (1-1/k)^b - eps1) * OPT_k``: it runs the revised greedy
   (Algorithm 6, out-degree tie-break) on a doubling pool ``R1``, picks the
   largest prefix ``b`` whose *estimated* Eq.-1 lower bound clears the
   prefix-specific threshold, then verifies that prefix on an independent
   sentinel-stopped pool ``R2`` (grown up to ``4 |R1|`` before giving up on
   the current candidate, per lines 13–15).
2. :class:`IMSentinelPhase` (Algorithm 8) selects the remaining ``k - b``
   seeds with an OPIM-C-style loop in which **every RR set stops as soon as
   it hits a sentinel** (Algorithm 5), shrinking average RR size by up to
   the paper's 700x.  RR sets already hit by the sentinels are treated as
   covered before greedy runs (line 5).

Budget split (Algorithm 4): ``eps1 = eps2 = eps/2`` and ``delta1 = delta2 =
delta/2``, giving ``(1 - 1/e - eps)`` with probability ``1 - delta`` overall.

Both phases are interruptible: a budget expiry or cancellation surfaces as
an *interrupted* phase result carrying best-so-far seeds, which
:class:`HIST` turns into a ``status="partial"`` IMResult.  HIST also
checkpoints at two granularities — once at the sentinel/IM phase boundary
and once per IM-Sentinel doubling round — and resumes a killed run to a
bit-identical final answer (round-boundary RNG snapshots plus pool and
counter state make the replay an exact prefix extension).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Type

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.bounds.opim import influence_lower_bound, influence_upper_bound
from repro.bounds.thresholds import theta_max_im_sentinel, theta_max_sentinel
from repro.core.results import IMResult
from repro.coverage.greedy import max_coverage_greedy
from repro.engine.schedule import (
    DoublingResume,
    SamplingSchedule,
    run_doubling,
)
from repro.engine.session import BankProvider
from repro.graphs.csr import CSRGraph
from repro.rrsets.base import RRGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.runtime.checkpoint import RestoredCounters, counters_to_dict
from repro.runtime.control import RunControl
from repro.utils.exceptions import ConfigurationError, ExecutionInterrupted
from repro.utils.timing import Timer


def _attach_control(control: Optional[RunControl], *generators: RRGenerator) -> None:
    if control is not None:
        for gen in generators:
            control.adopt_generator(gen)


def _configure_batching(
    batch_size: int, workers: int, *generators: RRGenerator
) -> None:
    """Propagate the execution knobs onto phase-local generators."""
    for gen in generators:
        gen.batch_size = batch_size
        gen.workers = workers


@dataclass
class SentinelResult:
    """Outcome of the sentinel-selection phase."""

    seeds: List[int]
    b: int
    selection_rr_sets: int        # |R1| at termination
    total_rr_sets: int            # R1 + all R2 validation sets
    verified: bool                # True if the Eq.-1 check passed in-loop
    iterations: int
    generators: tuple = field(repr=False, default=())
    #: the phase stopped early (budget / cancellation) — ``fallback_seeds``
    #: then holds the best-so-far greedy prefix for partial degradation
    interrupted: bool = False
    stop_reason: Optional[str] = None
    fallback_seeds: List[int] = field(default_factory=list)

    def state_dict(self) -> dict:
        """JSON-able snapshot for the phase-boundary checkpoint."""
        return {
            "seeds": [int(s) for s in self.seeds],
            "b": int(self.b),
            "selection_rr_sets": int(self.selection_rr_sets),
            "total_rr_sets": int(self.total_rr_sets),
            "verified": bool(self.verified),
            "iterations": int(self.iterations),
            "counters": [counters_to_dict(g.counters) for g in self.generators],
        }

    @classmethod
    def from_state_dict(cls, payload: dict) -> "SentinelResult":
        return cls(
            seeds=[int(s) for s in payload["seeds"]],
            b=int(payload["b"]),
            selection_rr_sets=int(payload["selection_rr_sets"]),
            total_rr_sets=int(payload["total_rr_sets"]),
            verified=bool(payload["verified"]),
            iterations=int(payload["iterations"]),
            generators=tuple(RestoredCounters(c) for c in payload["counters"]),
        )


class SentinelSetPhase:
    """Algorithm 7: find a size-``b`` sentinel set with a loose guarantee."""

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
        use_out_degree_tie_break: bool = True,
        batch_size: int = 1,
        workers: int = 1,
    ) -> None:
        self.graph = graph
        self.generator_cls = generator_cls
        self.use_out_degree_tie_break = use_out_degree_tie_break
        self.batch_size = batch_size
        self.workers = workers

    def _make_generator(self, control: Optional[RunControl]):
        def make() -> RRGenerator:
            gen = self.generator_cls(self.graph)
            _attach_control(control, gen)
            _configure_batching(self.batch_size, self.workers, gen)
            return gen

        return make

    def run(
        self,
        k: int,
        eps1: float,
        delta1: float,
        rng: np.random.Generator,
        max_b: Optional[int] = None,
        control: Optional[RunControl] = None,
        banks: Optional[BankProvider] = None,
    ) -> SentinelResult:
        """Execute the phase.  ``max_b`` optionally caps the sentinel size
        (used by the fixed-``b`` ablation); the automatic choice of line 8
        applies within ``[1, max_b]``.
        """
        graph = self.graph
        n = graph.n
        out_deg = graph.out_degree() if self.use_out_degree_tie_break else None
        if max_b is None:
            max_b = k
        if not 1 <= max_b <= k:
            raise ConfigurationError(f"max_b must lie in [1, k={k}], got {max_b}")

        theta0 = max(1, int(math.ceil(3.0 * math.log(1.0 / delta1))))
        theta_max = theta_max_sentinel(n, k, eps1, delta1)
        i_max = max(1, int(math.ceil(math.log2(max(theta_max / theta0, 2.0)))))
        delta_u = delta1 / (3.0 * i_max)
        delta_l = delta1 / (6.0 * i_max)
        x = 1.0 - 1.0 / k

        provider = (
            banks if banks is not None else BankProvider.transient(graph, rng)
        )
        make_gen = self._make_generator(control)
        # R1 holds plain (unmasked) RR sets — reusable across session
        # queries; R2 is stop-masked per candidate and rebuilt every query.
        bank1 = provider.get(
            "sentinel.r1", make_gen,
            batch_size=self.batch_size, workers=self.workers,
        )
        bank2 = provider.get(
            "sentinel.r2", make_gen, reusable=False,
            batch_size=self.batch_size, workers=self.workers,
        )
        metrics = control.metrics if control is not None else None

        candidate_b = 0
        candidate_seeds: List[int] = []
        validation_sets = 0
        iterations = 0
        sel_sets = 0
        verified = False
        greedy = None

        try:
            theta = theta0
            view1 = bank1.ensure(theta)
            for i in range(1, i_max + 1):
                iterations = i
                sel_sets = view1.num_rr
                greedy = max_coverage_greedy(
                    view1, select=k, topk=k, out_degree=out_deg,
                    metrics=metrics,
                )
                upper = influence_upper_bound(
                    greedy.upper_bound_coverage, view1.num_rr, n, delta_u
                )
                # Line 8: the largest prefix whose *estimated* lower bound
                # (Eq. 1 applied to R1 as if it were independent) clears the
                # prefix threshold 1 - x^a - eps1.
                b = 0
                for a in range(1, max_b + 1):
                    est_lower = influence_lower_bound(
                        greedy.coverage_history[a], view1.num_rr, n, delta_l
                    )
                    if upper > 0 and est_lower / upper > 1.0 - x ** a - eps1:
                        b = a
                if b >= 1:
                    seeds_b = greedy.seeds[:b]
                    candidate_b, candidate_seeds = b, seeds_b
                    stop_mask = np.zeros(n, dtype=bool)
                    stop_mask[seeds_b] = True
                    threshold = 1.0 - x ** b - eps1
                    # Lines 9-15: verify on an independent sentinel-stopped
                    # pool, growing it once to 4 |R1| before giving up on
                    # the candidate.  Each candidate gets a fresh pool on
                    # the same advancing stream.
                    bank2.reset_pool()
                    bank2.ensure(view1.num_rr, stop_mask=stop_mask)
                    for _ in range(2):
                        lower = influence_lower_bound(
                            bank2.pool.coverage(seeds_b),
                            bank2.pool.num_rr, n, delta_l,
                        )
                        if upper > 0 and lower / upper > threshold:
                            verified = True
                            break
                        if bank2.pool.num_rr < 4 * view1.num_rr:
                            bank2.ensure(4 * view1.num_rr, stop_mask=stop_mask)
                    validation_sets += bank2.pool.num_rr
                    if verified:
                        break
                if i < i_max:
                    theta *= 2
                    view1 = bank1.ensure(theta)
        except ExecutionInterrupted as exc:
            if greedy is not None:
                fallback = greedy.seeds[:k]
            elif bank1.pool.num_rr:
                fallback = max_coverage_greedy(
                    bank1.pool, select=k, topk=k, out_degree=out_deg
                ).seeds
            else:
                fallback = []
            return SentinelResult(
                seeds=candidate_seeds,
                b=candidate_b,
                selection_rr_sets=bank1.pool.num_rr,
                total_rr_sets=bank1.pool.num_rr + validation_sets,
                verified=verified,
                iterations=iterations,
                generators=(bank1, bank2),
                interrupted=True,
                stop_reason=exc.reason,
                fallback_seeds=fallback,
            )

        if candidate_b == 0:
            # Degenerate fallback: even the loosest prefix never cleared the
            # estimated test.  theta_max samples still certify any prefix
            # (Lemma 6), so return the strongest single sentinel.
            assert greedy is not None
            candidate_b, candidate_seeds = 1, greedy.seeds[:1]

        return SentinelResult(
            seeds=candidate_seeds,
            b=candidate_b,
            selection_rr_sets=sel_sets,
            total_rr_sets=sel_sets + validation_sets,
            verified=verified,
            iterations=iterations,
            generators=(bank1, bank2),
        )


@dataclass
class IMSentinelResult:
    """Outcome of the IM-Sentinel phase."""

    seeds: List[int]
    lower_bound: float
    upper_bound: float
    num_rr_sets: int
    average_rr_size: float
    iterations: int
    generators: tuple = field(repr=False, default=())
    interrupted: bool = False
    stop_reason: Optional[str] = None


class IMSentinelPhase:
    """Algorithm 8: select the remaining seeds with sentinel-stopped RR sets."""

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
        use_out_degree_tie_break: bool = True,
        batch_size: int = 1,
        workers: int = 1,
    ) -> None:
        self.graph = graph
        self.generator_cls = generator_cls
        self.use_out_degree_tie_break = use_out_degree_tie_break
        self.batch_size = batch_size
        self.workers = workers

    def run(
        self,
        k: int,
        eps: float,
        sentinel_seeds: List[int],
        eps2: float,
        delta2: float,
        rng: np.random.Generator,
        control: Optional[RunControl] = None,
        resume=None,
        checkpoint: Optional[Callable[[dict, dict], None]] = None,
        banks: Optional[BankProvider] = None,
        phase=None,
        prefetch=None,
    ) -> IMSentinelResult:
        """Execute the phase.

        ``resume`` is a ``(meta, pools)`` pair from a round checkpoint taken
        by ``checkpoint`` (a callback receiving round state + pools); both
        are wired by :class:`HIST`, as are ``phase`` (trace-span factory for
        the per-round spans) and ``prefetch`` (the speculative-pipeline
        controller; mutually exclusive with ``checkpoint``).
        """
        graph = self.graph
        n = graph.n
        b = len(sentinel_seeds)
        if not 1 <= b < k:
            raise ConfigurationError(
                f"IM-Sentinel needs 1 <= b < k, got b={b}, k={k}"
            )
        out_deg = graph.out_degree() if self.use_out_degree_tie_break else None
        stop_mask = np.zeros(n, dtype=bool)
        stop_mask[sentinel_seeds] = True
        target = 1.0 - 1.0 / math.e - eps

        theta0 = max(1, int(math.ceil(3.0 * math.log(1.0 / delta2))))
        theta_max = theta_max_im_sentinel(n, k, b, eps2, delta2)
        i_max = max(1, int(math.ceil(math.log2(max(theta_max / theta0, 2.0)))))
        delta_iter = delta2 / (3.0 * i_max)

        provider = (
            banks if banks is not None else BankProvider.transient(graph, rng)
        )

        def make_gen() -> RRGenerator:
            gen = self.generator_cls(graph)
            _attach_control(control, gen)
            _configure_batching(self.batch_size, self.workers, gen)
            return gen

        # Sentinel-stopped sets are specific to this query's sentinel set,
        # so neither pool is reusable across session queries.
        bank1 = provider.get(
            "im.r1", make_gen, stop_mask=stop_mask, reusable=False,
            batch_size=self.batch_size, workers=self.workers,
        )
        bank2 = provider.get(
            "im.r2", make_gen, stop_mask=stop_mask, reusable=False,
            batch_size=self.batch_size, workers=self.workers,
        )
        metrics = control.metrics if control is not None else None
        schedule = SamplingSchedule(theta0, max(theta0, theta_max), i_max)

        doubling_resume = None
        if resume is not None:
            meta, pools = resume
            bank1.adopt(pools["pool1"], meta["counters"][0])
            bank2.adopt(pools["pool2"], meta["counters"][1])
            IMAlgorithm._restore_rng(rng, meta["rng_state"])
            doubling_resume = DoublingResume(
                int(meta["round"]),
                [int(s) for s in meta["seeds"]],
                float(meta["lower"]),
                float(meta["upper"]),
            )

        def select(pool):
            # Line 5: RR sets already hit by a sentinel carry no marginal
            # coverage; mark them covered before greedy runs.
            greedy = max_coverage_greedy(
                pool,
                select=k - b,
                topk=k,
                out_degree=out_deg,
                initial_covered=pool.covered_mask(sentinel_seeds),
                excluded=sentinel_seeds,
                metrics=metrics,
            )
            upper = influence_upper_bound(
                greedy.upper_bound_coverage, pool.num_rr, n, delta_iter
            )
            return list(sentinel_seeds) + greedy.seeds, upper

        def validate(pool, seeds):
            return influence_lower_bound(
                pool.coverage(seeds), pool.num_rr, n, delta_iter
            )

        checkpointer = None
        if checkpoint is not None:

            def checkpointer(i, seeds, lower, upper):
                checkpoint(
                    {
                        "round": i,
                        "seeds": [int(s) for s in seeds],
                        "lower": lower,
                        "upper": upper,
                        "counters": [
                            counters_to_dict(bank1.generator.counters),
                            counters_to_dict(bank2.generator.counters),
                        ],
                    },
                    {"pool1": bank1.pool, "pool2": bank2.pool},
                )

        outcome = run_doubling(
            schedule,
            bank1,
            bank2,
            select=select,
            validate=validate,
            target=target,
            initial_seeds=sentinel_seeds,
            resume=doubling_resume,
            checkpointer=checkpointer,
            phase=phase,
            prefetch=prefetch,
        )
        if outcome.interrupted:
            return self._interrupted(
                sentinel_seeds, bank1.pool, out_deg, k, b,
                outcome.seeds, outcome.lower, outcome.upper,
                outcome.rounds, (bank1, bank2), outcome.stop_reason,
            )

        sets = sum(g.counters.sets_generated for g in (bank1, bank2))
        nodes = sum(g.counters.nodes_added for g in (bank1, bank2))
        return IMSentinelResult(
            seeds=outcome.seeds,
            lower_bound=outcome.lower,
            upper_bound=outcome.upper,
            num_rr_sets=sets,
            average_rr_size=(nodes / sets) if sets else 0.0,
            iterations=outcome.rounds,
            generators=(bank1, bank2),
        )

    def _interrupted(
        self, sentinel_seeds, pool1, out_deg, k, b,
        seeds, lower, upper, iterations, generators, reason,
    ) -> IMSentinelResult:
        """Best-so-far seeds after an interrupt inside the phase."""
        if len(seeds) <= b and pool1.num_rr:
            greedy = max_coverage_greedy(
                pool1,
                select=k - b,
                topk=k,
                out_degree=out_deg,
                initial_covered=pool1.covered_mask(sentinel_seeds),
                excluded=sentinel_seeds,
            )
            seeds = list(sentinel_seeds) + greedy.seeds
        gens = tuple(generators)
        sets = sum(g.counters.sets_generated for g in gens)
        nodes = sum(g.counters.nodes_added for g in gens)
        return IMSentinelResult(
            seeds=seeds,
            lower_bound=lower,
            upper_bound=upper,
            num_rr_sets=sets,
            average_rr_size=(nodes / sets) if sets else 0.0,
            iterations=iterations,
            generators=gens,
            interrupted=True,
            stop_reason=reason,
        )


class HIST(IMAlgorithm):
    """Algorithm 4: sentinel selection followed by IM-Sentinel.

    ``generator_cls`` picks the RR engine: vanilla (paper's "HIST") or
    :class:`~repro.rrsets.subsim.SubsimICGenerator` ("HIST+SUBSIM").
    ``fixed_b`` forces a sentinel size (ablation); ``use_out_degree_tie_break
    = False`` disables Algorithm 6's revision (ablation).
    """

    name = "hist"
    #: HIST's phases lean on exact per-set structures the sketch rows
    #: cannot serve — sentinel masks (``initial_covered``), excluded-node
    #: greedy, and per-set membership scans — so an explicit
    #: ``coverage_backend="sketch"`` is rejected and session-level
    #: ``"sketch"``/``"auto"`` defaults degrade to the exact tier.
    supports_sketch_coverage = False

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
        fixed_b: Optional[int] = None,
        use_out_degree_tie_break: bool = True,
    ) -> None:
        super().__init__(graph, generator_cls)
        if generator_cls is not VanillaICGenerator:
            self.name = f"hist+{generator_cls.name}"
        self.fixed_b = fixed_b
        self.use_out_degree_tie_break = use_out_degree_tie_break

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        eps1 = eps2 = eps / 2.0
        delta1 = delta2 = delta / 2.0
        if self.fixed_b is not None and not 1 <= self.fixed_b <= k:
            raise ConfigurationError(
                f"fixed_b must lie in [1, k={k}], got {self.fixed_b}"
            )

        phases = {}
        im_resume = None
        resumed = self._take_resume_state()
        if resumed is not None:
            meta, pools = resumed
            sentinel_state = meta["sentinel"]
            sentinel = SentinelResult.from_state_dict(sentinel_state)
            # The killed run's sentinel wall-clock is part of its record,
            # not of this process; keep the phase key with the saved value.
            phases["sentinel"] = float(sentinel_state.get("elapsed", 0.0))
            if self._control is not None:
                # The finished phase's generators survive only as counter
                # shims; registering them keeps ``generation.*`` totals (and
                # thus RunReports) identical to the uninterrupted run.
                for shim in sentinel.generators:
                    self._control.metrics.attach_source(shim)
            if meta["phase"] == "sentinel":
                self._restore_rng(rng, meta["rng_state"])
            else:
                im_resume = (meta, pools)
        else:
            with Timer() as t_sentinel, self._phase("sentinel"):
                sentinel = SentinelSetPhase(
                    self.graph, self.generator_cls, self.use_out_degree_tie_break,
                    batch_size=self._batch_size, workers=self._workers,
                ).run(k, eps1, delta1, rng, max_b=self.fixed_b,
                      control=self._control, banks=self._banks)
            phases["sentinel"] = t_sentinel.elapsed
            if sentinel.interrupted:
                result = self._partial_result(
                    sentinel.fallback_seeds, k, eps, delta,
                    generators=sentinel.generators,
                    reason=sentinel.stop_reason,
                    b=sentinel.b,
                    sentinel_rr_sets=sentinel.total_rr_sets,
                    sentinel_selection_rr_sets=sentinel.selection_rr_sets,
                    sentinel_verified=sentinel.verified,
                )
                result.phases = phases
                return result
            sentinel_state = sentinel.state_dict()
            sentinel_state["elapsed"] = phases["sentinel"]
            boundary_meta = self._query_meta(k, eps, delta)
            boundary_meta.update(phase="sentinel", sentinel=sentinel_state)
            self._round_checkpoint(rng, boundary_meta, {})

        generators = list(sentinel.generators)
        extras = {
            "b": sentinel.b,
            "sentinel_rr_sets": sentinel.total_rr_sets,
            "sentinel_selection_rr_sets": sentinel.selection_rr_sets,
            "sentinel_verified": sentinel.verified,
        }

        if sentinel.b >= k:
            result = self._result_from(
                sentinel.seeds, k, eps, delta, generators=generators, **extras
            )
            result.phases = phases
            return result

        def im_checkpoint(round_state: dict, pools: dict) -> None:
            meta = self._query_meta(k, eps, delta)
            meta.update(phase="im_sentinel", sentinel=sentinel_state)
            meta.update(round_state)
            self._round_checkpoint(rng, meta, pools)

        with Timer() as t_im, self._phase("im_sentinel"):
            im = IMSentinelPhase(
                self.graph, self.generator_cls, self.use_out_degree_tie_break,
                batch_size=self._batch_size, workers=self._workers,
            ).run(
                k, eps, sentinel.seeds, eps2, delta2, rng,
                control=self._control,
                resume=im_resume,
                # A no-op checkpoint callback would force the serial round
                # extension; only wire it when a store is attached.
                checkpoint=im_checkpoint if self._has_checkpoint else None,
                banks=self._banks,
                phase=self._phase,
                prefetch=self._prefetch_controller(),
            )
        generators.extend(im.generators)
        phases["im_sentinel"] = t_im.elapsed
        extras["im_sentinel_rr_sets"] = im.num_rr_sets
        extras["im_sentinel_avg_rr_size"] = im.average_rr_size

        if im.interrupted:
            result = self._partial_result(
                im.seeds, k, eps, delta,
                generators=generators,
                reason=im.stop_reason,
                **extras,
            )
        else:
            result = self._result_from(
                im.seeds, k, eps, delta, generators=generators, **extras
            )
        result.phases = phases
        result.lower_bound = im.lower_bound
        result.upper_bound = im.upper_bound
        return result
