"""HIST — Hit-and-Stop (paper Section 4, Algorithms 4, 7 and 8).

In high-influence networks the bottleneck of every RR-based IM algorithm is
the *size* of each RR set, not their number.  HIST splits the budget:

1. :class:`SentinelSetPhase` (Algorithm 7) cheaply finds a small sentinel
   set ``S_b*`` with the loose guarantee
   ``I(S_b*) >= (1 - (1-1/k)^b - eps1) * OPT_k``: it runs the revised greedy
   (Algorithm 6, out-degree tie-break) on a doubling pool ``R1``, picks the
   largest prefix ``b`` whose *estimated* Eq.-1 lower bound clears the
   prefix-specific threshold, then verifies that prefix on an independent
   sentinel-stopped pool ``R2`` (grown up to ``4 |R1|`` before giving up on
   the current candidate, per lines 13–15).
2. :class:`IMSentinelPhase` (Algorithm 8) selects the remaining ``k - b``
   seeds with an OPIM-C-style loop in which **every RR set stops as soon as
   it hits a sentinel** (Algorithm 5), shrinking average RR size by up to
   the paper's 700x.  RR sets already hit by the sentinels are treated as
   covered before greedy runs (line 5).

Budget split (Algorithm 4): ``eps1 = eps2 = eps/2`` and ``delta1 = delta2 =
delta/2``, giving ``(1 - 1/e - eps)`` with probability ``1 - delta`` overall.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Type

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.bounds.opim import influence_lower_bound, influence_upper_bound
from repro.bounds.thresholds import theta_max_im_sentinel, theta_max_sentinel
from repro.core.results import IMResult
from repro.coverage.greedy import max_coverage_greedy
from repro.graphs.csr import CSRGraph
from repro.rrsets.base import RRGenerator
from repro.rrsets.collection import RRCollection
from repro.rrsets.vanilla import VanillaICGenerator
from repro.utils.exceptions import ConfigurationError
from repro.utils.timing import Timer


@dataclass
class SentinelResult:
    """Outcome of the sentinel-selection phase."""

    seeds: List[int]
    b: int
    selection_rr_sets: int        # |R1| at termination
    total_rr_sets: int            # R1 + all R2 validation sets
    verified: bool                # True if the Eq.-1 check passed in-loop
    iterations: int
    generators: tuple = field(repr=False, default=())


class SentinelSetPhase:
    """Algorithm 7: find a size-``b`` sentinel set with a loose guarantee."""

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
        use_out_degree_tie_break: bool = True,
    ) -> None:
        self.graph = graph
        self.generator_cls = generator_cls
        self.use_out_degree_tie_break = use_out_degree_tie_break

    def run(
        self,
        k: int,
        eps1: float,
        delta1: float,
        rng: np.random.Generator,
        max_b: Optional[int] = None,
    ) -> SentinelResult:
        """Execute the phase.  ``max_b`` optionally caps the sentinel size
        (used by the fixed-``b`` ablation); the automatic choice of line 8
        applies within ``[1, max_b]``.
        """
        graph = self.graph
        n = graph.n
        out_deg = graph.out_degree() if self.use_out_degree_tie_break else None
        if max_b is None:
            max_b = k
        if not 1 <= max_b <= k:
            raise ConfigurationError(f"max_b must lie in [1, k={k}], got {max_b}")

        theta0 = max(1, int(math.ceil(3.0 * math.log(1.0 / delta1))))
        theta_max = theta_max_sentinel(n, k, eps1, delta1)
        i_max = max(1, int(math.ceil(math.log2(max(theta_max / theta0, 2.0)))))
        delta_u = delta1 / (3.0 * i_max)
        delta_l = delta1 / (6.0 * i_max)
        x = 1.0 - 1.0 / k

        gen1 = self.generator_cls(graph)
        gen2 = self.generator_cls(graph)
        pool1 = RRCollection(n)
        pool1.extend(theta0, gen1, rng)

        candidate_b = 0
        candidate_seeds: List[int] = []
        validation_sets = 0
        iterations = 0
        verified = False
        greedy = None

        for i in range(1, i_max + 1):
            iterations = i
            greedy = max_coverage_greedy(
                pool1, select=k, topk=k, out_degree=out_deg
            )
            upper = influence_upper_bound(
                greedy.upper_bound_coverage, pool1.num_rr, n, delta_u
            )
            # Line 8: the largest prefix whose *estimated* lower bound
            # (Eq. 1 applied to R1 as if it were independent) clears the
            # prefix threshold 1 - x^a - eps1.
            b = 0
            for a in range(1, max_b + 1):
                est_lower = influence_lower_bound(
                    greedy.coverage_history[a], pool1.num_rr, n, delta_l
                )
                if upper > 0 and est_lower / upper > 1.0 - x ** a - eps1:
                    b = a
            if b >= 1:
                seeds_b = greedy.seeds[:b]
                candidate_b, candidate_seeds = b, seeds_b
                stop_mask = np.zeros(n, dtype=bool)
                stop_mask[seeds_b] = True
                threshold = 1.0 - x ** b - eps1
                # Lines 9-15: verify on an independent sentinel-stopped pool,
                # growing it once to 4 |R1| before giving up on the candidate.
                pool2 = RRCollection(n)
                pool2.extend(pool1.num_rr, gen2, rng, stop_mask=stop_mask)
                for _ in range(2):
                    lower = influence_lower_bound(
                        pool2.coverage(seeds_b), pool2.num_rr, n, delta_l
                    )
                    if upper > 0 and lower / upper > threshold:
                        verified = True
                        break
                    if pool2.num_rr < 4 * pool1.num_rr:
                        pool2.extend(
                            4 * pool1.num_rr - pool2.num_rr,
                            gen2,
                            rng,
                            stop_mask=stop_mask,
                        )
                validation_sets += pool2.num_rr
                if verified:
                    break
            if i < i_max:
                pool1.extend(pool1.num_rr, gen1, rng)

        if candidate_b == 0:
            # Degenerate fallback: even the loosest prefix never cleared the
            # estimated test.  theta_max samples still certify any prefix
            # (Lemma 6), so return the strongest single sentinel.
            assert greedy is not None
            candidate_b, candidate_seeds = 1, greedy.seeds[:1]

        return SentinelResult(
            seeds=candidate_seeds,
            b=candidate_b,
            selection_rr_sets=pool1.num_rr,
            total_rr_sets=pool1.num_rr + validation_sets,
            verified=verified,
            iterations=iterations,
            generators=(gen1, gen2),
        )


@dataclass
class IMSentinelResult:
    """Outcome of the IM-Sentinel phase."""

    seeds: List[int]
    lower_bound: float
    upper_bound: float
    num_rr_sets: int
    average_rr_size: float
    iterations: int
    generators: tuple = field(repr=False, default=())


class IMSentinelPhase:
    """Algorithm 8: select the remaining seeds with sentinel-stopped RR sets."""

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
        use_out_degree_tie_break: bool = True,
    ) -> None:
        self.graph = graph
        self.generator_cls = generator_cls
        self.use_out_degree_tie_break = use_out_degree_tie_break

    def run(
        self,
        k: int,
        eps: float,
        sentinel_seeds: List[int],
        eps2: float,
        delta2: float,
        rng: np.random.Generator,
    ) -> IMSentinelResult:
        graph = self.graph
        n = graph.n
        b = len(sentinel_seeds)
        if not 1 <= b < k:
            raise ConfigurationError(
                f"IM-Sentinel needs 1 <= b < k, got b={b}, k={k}"
            )
        out_deg = graph.out_degree() if self.use_out_degree_tie_break else None
        stop_mask = np.zeros(n, dtype=bool)
        stop_mask[sentinel_seeds] = True
        target = 1.0 - 1.0 / math.e - eps

        theta0 = max(1, int(math.ceil(3.0 * math.log(1.0 / delta2))))
        theta_max = theta_max_im_sentinel(n, k, b, eps2, delta2)
        i_max = max(1, int(math.ceil(math.log2(max(theta_max / theta0, 2.0)))))
        delta_iter = delta2 / (3.0 * i_max)

        gen1 = self.generator_cls(graph)
        gen2 = self.generator_cls(graph)
        pool1 = RRCollection(n)
        pool2 = RRCollection(n)
        pool1.extend(theta0, gen1, rng, stop_mask=stop_mask)
        pool2.extend(theta0, gen2, rng, stop_mask=stop_mask)

        seeds: List[int] = list(sentinel_seeds)
        lower = 0.0
        upper = float("inf")
        iterations = 0
        for i in range(1, i_max + 1):
            iterations = i
            # Line 5: RR sets already hit by a sentinel carry no marginal
            # coverage; mark them covered before greedy runs.
            initial_covered = pool1.covered_mask(sentinel_seeds)
            greedy = max_coverage_greedy(
                pool1,
                select=k - b,
                topk=k,
                out_degree=out_deg,
                initial_covered=initial_covered,
                excluded=sentinel_seeds,
            )
            seeds = list(sentinel_seeds) + greedy.seeds
            upper = influence_upper_bound(
                greedy.upper_bound_coverage, pool1.num_rr, n, delta_iter
            )
            lower = influence_lower_bound(
                pool2.coverage(seeds), pool2.num_rr, n, delta_iter
            )
            if upper > 0 and lower / upper > target:
                break
            if i < i_max:
                pool1.extend(pool1.num_rr, gen1, rng, stop_mask=stop_mask)
                pool2.extend(pool2.num_rr, gen2, rng, stop_mask=stop_mask)

        sets = gen1.counters.sets_generated + gen2.counters.sets_generated
        nodes = gen1.counters.nodes_added + gen2.counters.nodes_added
        return IMSentinelResult(
            seeds=seeds,
            lower_bound=lower,
            upper_bound=upper,
            num_rr_sets=sets,
            average_rr_size=(nodes / sets) if sets else 0.0,
            iterations=iterations,
            generators=(gen1, gen2),
        )


class HIST(IMAlgorithm):
    """Algorithm 4: sentinel selection followed by IM-Sentinel.

    ``generator_cls`` picks the RR engine: vanilla (paper's "HIST") or
    :class:`~repro.rrsets.subsim.SubsimICGenerator` ("HIST+SUBSIM").
    ``fixed_b`` forces a sentinel size (ablation); ``use_out_degree_tie_break
    = False`` disables Algorithm 6's revision (ablation).
    """

    name = "hist"

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
        fixed_b: Optional[int] = None,
        use_out_degree_tie_break: bool = True,
    ) -> None:
        super().__init__(graph, generator_cls)
        if generator_cls is not VanillaICGenerator:
            self.name = f"hist+{generator_cls.name}"
        self.fixed_b = fixed_b
        self.use_out_degree_tie_break = use_out_degree_tie_break

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        eps1 = eps2 = eps / 2.0
        delta1 = delta2 = delta / 2.0
        if self.fixed_b is not None and not 1 <= self.fixed_b <= k:
            raise ConfigurationError(
                f"fixed_b must lie in [1, k={k}], got {self.fixed_b}"
            )

        with Timer() as t_sentinel:
            sentinel = SentinelSetPhase(
                self.graph, self.generator_cls, self.use_out_degree_tie_break
            ).run(k, eps1, delta1, rng, max_b=self.fixed_b)
        generators = list(sentinel.generators)
        phases = {"sentinel": t_sentinel.elapsed}
        extras = {
            "b": sentinel.b,
            "sentinel_rr_sets": sentinel.total_rr_sets,
            "sentinel_selection_rr_sets": sentinel.selection_rr_sets,
            "sentinel_verified": sentinel.verified,
        }

        if sentinel.b >= k:
            result = self._result_from(
                sentinel.seeds, k, eps, delta, generators=generators, **extras
            )
            result.phases = phases
            return result

        with Timer() as t_im:
            im = IMSentinelPhase(
                self.graph, self.generator_cls, self.use_out_degree_tie_break
            ).run(k, eps, sentinel.seeds, eps2, delta2, rng)
        generators.extend(im.generators)
        phases["im_sentinel"] = t_im.elapsed
        extras["im_sentinel_rr_sets"] = im.num_rr_sets
        extras["im_sentinel_avg_rr_size"] = im.average_rr_size

        result = self._result_from(
            im.seeds, k, eps, delta, generators=generators, **extras
        )
        result.phases = phases
        result.lower_bound = im.lower_bound
        result.upper_bound = im.upper_bound
        return result
