"""OPIM-C [37] — and, with a SUBSIM generator, the paper's SUBSIM algorithm.

OPIM-C maintains two equal-sized independent RR pools.  ``R1`` drives greedy
seed selection and yields the Eq. 2 upper bound on the optimum; ``R2`` is
independent of the selected seeds, so Eq. 1 gives a valid lower bound on
their influence.  The pools double until

    lower(S_k*) / upper(S_k^o)  >  1 - 1/e - eps,

capped by ``theta_max`` which certifies the guarantee unconditionally.  The
paper's *SUBSIM* system is exactly this algorithm with the vanilla RR
generator swapped for :class:`~repro.rrsets.subsim.SubsimICGenerator`:

>>> OPIMC(graph, generator_cls=SubsimICGenerator).run(k=50)   # doctest: +SKIP
"""

from __future__ import annotations

import math
from typing import Type

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.bounds.opim import (
    influence_lower_bound,
    influence_upper_bound,
    sketch_gap_overlap,
)
from repro.bounds.thresholds import theta_max_opimc
from repro.core.results import IMResult
from repro.engine.schedule import (
    DoublingResume,
    SamplingSchedule,
    fallback_seeds,
    run_doubling,
)
from repro.graphs.csr import CSRGraph
from repro.rrsets.base import RRGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.runtime.checkpoint import counters_to_dict


class OPIMC(IMAlgorithm):
    """Online Processing of Influence Maximization with early stopping."""

    name = "opim-c"

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
    ) -> None:
        super().__init__(graph, generator_cls)
        if generator_cls is not VanillaICGenerator:
            self.name = f"opim-c+{generator_cls.name}"

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        n = self.graph.n
        theta0 = max(1, int(math.ceil(3.0 * math.log(1.0 / delta))))
        theta_max = theta_max_opimc(n, k, eps, delta)
        i_max = self._doubling_iterations(theta0, theta_max)
        delta_iter = delta / (3.0 * i_max)
        target = 1.0 - 1.0 / math.e - eps

        bank1 = self._bank("opimc.r1")
        bank2 = self._bank("opimc.r2")
        schedule = SamplingSchedule(theta0, max(theta0, theta_max), i_max)
        backend = self._coverage_backend(theta_hint=theta_max)

        resume = None
        resumed = self._take_resume_state()
        if resumed is not None:
            meta, pools = resumed
            bank1.adopt(pools["pool1"], meta["counters"][0])
            bank2.adopt(pools["pool2"], meta["counters"][1])
            self._restore_rng(rng, meta["rng_state"])
            resume = DoublingResume(
                int(meta["round"]),
                [int(s) for s in meta["seeds"]],
                float(meta["lower"]),
                float(meta["upper"]),
            )

        def select(pool):
            greedy = backend.max_coverage(
                pool, select=k, topk=k, metrics=self._metrics
            )
            # Under a sketch backend the coverage upper bound is an
            # estimate; inflating it by the certified relative error keeps
            # Eq. 2 a true high-probability bound (exact backend: identity).
            upper = influence_upper_bound(
                backend.certified_upper_coverage(
                    greedy.upper_bound_coverage, pool.num_rr
                ),
                pool.num_rr,
                n,
                delta_iter,
            )
            return greedy.seeds, upper

        def validate(pool, seeds):
            return influence_lower_bound(
                backend.coverage(pool, seeds), pool.num_rr, n, delta_iter
            )

        refine = None
        if backend.name == "sketch":

            def refine(i, theta, seeds, lower, upper):
                # Error-adaptive ladder: buy registers only when the sketch
                # band (not the sample size) straddles the stopping rule.
                if not backend.can_escalate():
                    return False
                if not sketch_gap_overlap(
                    lower,
                    backend.last_upper_coverage,
                    theta,
                    n,
                    delta_iter,
                    target,
                    backend.epsilon_sketch,
                ):
                    return False
                backend.escalate(metrics=self._metrics)
                return True

        def checkpointer(i, seeds, lower, upper):
            meta = self._query_meta(k, eps, delta)
            meta.update(
                round=i,
                seeds=[int(s) for s in seeds],
                lower=lower,
                upper=upper,
                counters=[
                    counters_to_dict(bank1.generator.counters),
                    counters_to_dict(bank2.generator.counters),
                ],
            )
            self._round_checkpoint(
                rng, meta, {"pool1": bank1.pool, "pool2": bank2.pool}
            )

        outcome = run_doubling(
            schedule,
            bank1,
            bank2,
            select=select,
            validate=validate,
            target=target,
            resume=resume,
            # Only a run with an attached store gets the synchronous
            # checkpointer (a no-op callback would still force the serial
            # round extension and disable the speculative pipeline).
            checkpointer=checkpointer if self._has_checkpoint else None,
            phase=self._phase,
            refine=refine,
            prefetch=self._prefetch_controller(),
        )
        if outcome.interrupted:
            return self._finalize_partial(
                bank1.pool, k, eps, delta, (bank1, bank2),
                outcome.stop_reason, outcome.rounds, theta_max,
                outcome.lower, outcome.upper, seeds=outcome.seeds,
                backend=backend,
            )

        result = self._result_from(
            outcome.seeds,
            k,
            eps,
            delta,
            generators=(bank1, bank2),
            rounds=outcome.rounds,
            theta_max=theta_max,
        )
        result.lower_bound = outcome.lower
        result.upper_bound = outcome.upper
        return result

    def _finalize_partial(
        self, pool1, k, eps, delta, generators, reason,
        rounds, theta_max, lower, upper, seeds=None, backend=None,
    ) -> IMResult:
        """Best-so-far degradation: greedy over whatever pool1 holds."""
        if not seeds:
            seeds = fallback_seeds(pool1, k, backend=backend, topk=k)
        result = self._partial_result(
            seeds or [], k, eps, delta,
            generators=generators,
            reason=reason,
            rounds=rounds,
            theta_max=theta_max,
        )
        result.lower_bound = lower
        result.upper_bound = upper
        return result
