"""OPIM-C [37] — and, with a SUBSIM generator, the paper's SUBSIM algorithm.

OPIM-C maintains two equal-sized independent RR pools.  ``R1`` drives greedy
seed selection and yields the Eq. 2 upper bound on the optimum; ``R2`` is
independent of the selected seeds, so Eq. 1 gives a valid lower bound on
their influence.  The pools double until

    lower(S_k*) / upper(S_k^o)  >  1 - 1/e - eps,

capped by ``theta_max`` which certifies the guarantee unconditionally.  The
paper's *SUBSIM* system is exactly this algorithm with the vanilla RR
generator swapped for :class:`~repro.rrsets.subsim.SubsimICGenerator`:

>>> OPIMC(graph, generator_cls=SubsimICGenerator).run(k=50)   # doctest: +SKIP
"""

from __future__ import annotations

import math
from typing import Type

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.bounds.opim import influence_lower_bound, influence_upper_bound
from repro.bounds.thresholds import theta_max_opimc
from repro.core.results import IMResult
from repro.coverage.greedy import max_coverage_greedy
from repro.graphs.csr import CSRGraph
from repro.rrsets.base import RRGenerator
from repro.rrsets.collection import RRCollection
from repro.rrsets.vanilla import VanillaICGenerator
from repro.runtime.checkpoint import counters_to_dict
from repro.utils.exceptions import ExecutionInterrupted


class OPIMC(IMAlgorithm):
    """Online Processing of Influence Maximization with early stopping."""

    name = "opim-c"

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
    ) -> None:
        super().__init__(graph, generator_cls)
        if generator_cls is not VanillaICGenerator:
            self.name = f"opim-c+{generator_cls.name}"

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        n = self.graph.n
        theta0 = max(1, int(math.ceil(3.0 * math.log(1.0 / delta))))
        theta_max = theta_max_opimc(n, k, eps, delta)
        i_max = self._doubling_iterations(theta0, theta_max)
        delta_iter = delta / (3.0 * i_max)
        target = 1.0 - 1.0 / math.e - eps

        gen1 = self._new_generator()
        gen2 = self._new_generator()
        pool1 = RRCollection(n)
        pool2 = RRCollection(n)

        seeds = []
        lower = 0.0
        upper = float("inf")
        rounds = 0
        start_round = 1

        resumed = self._take_resume_state()
        if resumed is not None:
            meta, pools = resumed
            pool1, pool2 = pools["pool1"], pools["pool2"]
            self._restore_generator(gen1, meta["counters"][0])
            self._restore_generator(gen2, meta["counters"][1])
            self._restore_rng(rng, meta["rng_state"])
            rounds = int(meta["round"])
            start_round = rounds + 1
            seeds = [int(s) for s in meta["seeds"]]
            lower = float(meta["lower"])
            upper = float(meta["upper"])
        else:
            try:
                with self._phase("bootstrap"):
                    pool1.extend(theta0, gen1, rng)
                    pool2.extend(theta0, gen2, rng)
            except ExecutionInterrupted as exc:
                return self._finalize_partial(
                    pool1, k, eps, delta, (gen1, gen2), exc.reason,
                    rounds, theta_max, lower, upper,
                )

        try:
            for i in range(start_round, i_max + 1):
                rounds = i
                with self._phase(f"round-{i}"):
                    greedy = max_coverage_greedy(
                        pool1, select=k, topk=k, metrics=self._metrics
                    )
                    seeds = greedy.seeds
                    upper = influence_upper_bound(
                        greedy.upper_bound_coverage, pool1.num_rr, n, delta_iter
                    )
                    lower = influence_lower_bound(
                        pool2.coverage(seeds), pool2.num_rr, n, delta_iter
                    )
                    if upper > 0 and lower / upper > target:
                        break
                    if i < i_max:
                        pool1.extend(pool1.num_rr, gen1, rng)
                        pool2.extend(pool2.num_rr, gen2, rng)
                        meta = self._query_meta(k, eps, delta)
                        meta.update(
                            round=i,
                            seeds=[int(s) for s in seeds],
                            lower=lower,
                            upper=upper,
                            counters=[
                                counters_to_dict(gen1.counters),
                                counters_to_dict(gen2.counters),
                            ],
                        )
                        self._round_checkpoint(
                            rng, meta, {"pool1": pool1, "pool2": pool2}
                        )
        except ExecutionInterrupted as exc:
            return self._finalize_partial(
                pool1, k, eps, delta, (gen1, gen2), exc.reason,
                rounds, theta_max, lower, upper, seeds=seeds,
            )

        result = self._result_from(
            seeds,
            k,
            eps,
            delta,
            generators=(gen1, gen2),
            rounds=rounds,
            theta_max=theta_max,
        )
        result.lower_bound = lower
        result.upper_bound = upper
        return result

    def _finalize_partial(
        self, pool1, k, eps, delta, generators, reason,
        rounds, theta_max, lower, upper, seeds=None,
    ) -> IMResult:
        """Best-so-far degradation: greedy over whatever pool1 holds."""
        if not seeds and pool1.num_rr:
            seeds = max_coverage_greedy(pool1, select=k, topk=k).seeds
        result = self._partial_result(
            seeds or [], k, eps, delta,
            generators=generators,
            reason=reason,
            rounds=rounds,
            theta_max=theta_max,
        )
        result.lower_bound = lower
        result.upper_bound = upper
        return result
