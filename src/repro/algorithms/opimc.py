"""OPIM-C [37] — and, with a SUBSIM generator, the paper's SUBSIM algorithm.

OPIM-C maintains two equal-sized independent RR pools.  ``R1`` drives greedy
seed selection and yields the Eq. 2 upper bound on the optimum; ``R2`` is
independent of the selected seeds, so Eq. 1 gives a valid lower bound on
their influence.  The pools double until

    lower(S_k*) / upper(S_k^o)  >  1 - 1/e - eps,

capped by ``theta_max`` which certifies the guarantee unconditionally.  The
paper's *SUBSIM* system is exactly this algorithm with the vanilla RR
generator swapped for :class:`~repro.rrsets.subsim.SubsimICGenerator`:

>>> OPIMC(graph, generator_cls=SubsimICGenerator).run(k=50)   # doctest: +SKIP
"""

from __future__ import annotations

import math
from typing import Type

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.bounds.opim import influence_lower_bound, influence_upper_bound
from repro.bounds.thresholds import theta_max_opimc
from repro.core.results import IMResult
from repro.coverage.greedy import max_coverage_greedy
from repro.graphs.csr import CSRGraph
from repro.rrsets.base import RRGenerator
from repro.rrsets.collection import RRCollection
from repro.rrsets.vanilla import VanillaICGenerator


class OPIMC(IMAlgorithm):
    """Online Processing of Influence Maximization with early stopping."""

    name = "opim-c"

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
    ) -> None:
        super().__init__(graph, generator_cls)
        if generator_cls is not VanillaICGenerator:
            self.name = f"opim-c+{generator_cls.name}"

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        n = self.graph.n
        theta0 = max(1, int(math.ceil(3.0 * math.log(1.0 / delta))))
        theta_max = theta_max_opimc(n, k, eps, delta)
        i_max = self._doubling_iterations(theta0, theta_max)
        delta_iter = delta / (3.0 * i_max)
        target = 1.0 - 1.0 / math.e - eps

        gen1 = self._new_generator()
        gen2 = self._new_generator()
        pool1 = RRCollection(n)
        pool2 = RRCollection(n)
        pool1.extend(theta0, gen1, rng)
        pool2.extend(theta0, gen2, rng)

        seeds = []
        lower = 0.0
        upper = float("inf")
        rounds = 0
        for i in range(1, i_max + 1):
            rounds = i
            greedy = max_coverage_greedy(pool1, select=k, topk=k)
            seeds = greedy.seeds
            upper = influence_upper_bound(
                greedy.upper_bound_coverage, pool1.num_rr, n, delta_iter
            )
            lower = influence_lower_bound(
                pool2.coverage(seeds), pool2.num_rr, n, delta_iter
            )
            if upper > 0 and lower / upper > target:
                break
            if i < i_max:
                pool1.extend(pool1.num_rr, gen1, rng)
                pool2.extend(pool2.num_rr, gen2, rng)

        result = self._result_from(
            seeds,
            k,
            eps,
            delta,
            generators=(gen1, gen2),
            rounds=rounds,
            theta_max=theta_max,
        )
        result.lower_bound = lower
        result.upper_bound = upper
        return result
