"""TIM+ — Two-phase Influence Maximization (Tang et al. [39]).

Phase structure:

1. **KPT estimation** guesses ``KPT = E[I(v*)]`` (the expected influence of
   a degree-biased random node, which lower-bounds ``OPT_k / k`` effects in
   the sample bound) by testing whether the width statistic
   ``kappa = sum (1 - (1 - w(R)/m)^k)`` of a batch of RR sets clears the
   current guess, halving the guess otherwise.
2. **Refinement** (the "+" of TIM+) greedily selects seeds on a small pool
   and uses an independent estimate of their coverage to tighten ``KPT``.
3. **Selection** draws ``theta = lambda / KPT+`` RR sets and runs greedy.

``w(R)`` is the number of edges entering nodes of ``R``.  Like IMM, the
schedule grows with ``ln C(n, k)``; ``max_rr_sets`` caps it for sweeps.
"""

from __future__ import annotations

import math
from typing import Optional, Type

import numpy as np

from repro.algorithms.base import IMAlgorithm
from repro.bounds.combinatorics import log_binomial
from repro.core.results import IMResult
from repro.engine.schedule import fallback_seeds
from repro.graphs.csr import CSRGraph
from repro.rrsets.base import RRGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.utils.exceptions import ExecutionInterrupted


class TIMPlus(IMAlgorithm):
    """Near-linear-time IM with a KPT-based sample bound."""

    name = "tim+"

    def __init__(
        self,
        graph: CSRGraph,
        generator_cls: Type[RRGenerator] = VanillaICGenerator,
        max_rr_sets: Optional[int] = None,
    ) -> None:
        super().__init__(graph, generator_cls)
        if max_rr_sets is not None and max_rr_sets < 1:
            raise ValueError("max_rr_sets must be positive when given")
        self.max_rr_sets = max_rr_sets

    def _cap(self, theta: int) -> int:
        return theta if self.max_rr_sets is None else min(theta, self.max_rr_sets)

    def _select(
        self, k: int, eps: float, delta: float, rng: np.random.Generator
    ) -> IMResult:
        graph = self.graph
        n, m = graph.n, graph.m
        in_deg = graph.in_degree()
        log_inv_delta = math.log(1.0 / delta)

        # One bank per phase pool; all four interleave on the run's stream
        # in transient mode exactly as the four ad-hoc pools used to.
        bank_est = self._bank("tim.estimate")
        bank_refine = self._bank("tim.refine")
        bank_check = self._bank("tim.check")
        bank_final = self._bank("tim.final")
        generators = (bank_est, bank_refine, bank_check, bank_final)
        backend = self._coverage_backend(theta_hint=self.max_rr_sets)

        # ``last_bank`` tracks the most recent selection-worthy pool so an
        # interrupt anywhere still yields best-so-far seeds.
        kpt_star = 1.0
        kpt_plus = 1.0
        theta = 0
        last_bank = bank_est
        try:
            # ---- Phase 1: KPT* estimation --------------------------------
            log2n = max(2, int(math.ceil(math.log2(max(n, 2)))))
            prev_c = 0
            for i in range(1, log2n):
                c_i = self._cap(
                    int(math.ceil((6.0 * log_inv_delta + 6.0 * math.log(log2n)) * 2**i))
                )
                view = bank_est.ensure(c_i)
                if m == 0 or c_i <= prev_c:
                    break
                prev_c = c_i
                # Width statistic over the first c_i sets, one reduceat over
                # the flat pool: w(R) = sum of in-degrees of R's nodes.
                # cumsum keeps the strictly left-to-right float accumulation
                # of the original per-set loop, preserving bit-identity.
                widths = view.per_set_sums(in_deg, stop=c_i)
                terms = 1.0 - (1.0 - widths.astype(np.float64) / m) ** k
                kappa = float(np.cumsum(terms)[-1]) if len(terms) else 0.0
                if kappa / c_i > 1.0 / (2.0 ** i):
                    kpt_star = n * kappa / (2.0 * c_i)
                    break
                if c_i == self.max_rr_sets:
                    break
            kpt_star = max(kpt_star, 1.0)

            # ---- Phase 2: refinement (KPT+) ------------------------------
            eps_prime = min(0.5, 5.0 * (eps ** 2 / (k + 1.0)) ** (1.0 / 3.0))
            lam_prime = (
                (2.0 + eps_prime)
                * n
                * (log_inv_delta + math.log(log2n))
                / (eps_prime ** 2)
            )
            theta_refine = self._cap(max(1, int(math.ceil(lam_prime / kpt_star))))
            last_bank = bank_refine
            view = bank_refine.ensure(theta_refine)
            greedy = backend.max_coverage(
                view, select=k, track_upper_bound=False
            )
            check = bank_check.ensure(theta_refine)
            fraction = backend.coverage(check, greedy.seeds) / check.num_rr
            kpt_plus = max(kpt_star, fraction * n / (1.0 + eps_prime))

            # ---- Phase 3: final selection --------------------------------
            lam = (
                (8.0 + 2.0 * eps)
                * n
                * (log_inv_delta + log_binomial(n, k) + math.log(2.0))
                / (eps ** 2)
            )
            theta = self._cap(max(1, int(math.ceil(lam / kpt_plus))))
            last_bank = bank_final
            view = bank_final.ensure(theta)
            greedy = backend.max_coverage(
                view, select=k, track_upper_bound=False
            )
        except ExecutionInterrupted as exc:
            pool = last_bank.pool
            if not pool.num_rr and bank_est.pool.num_rr:
                pool = bank_est.pool
            seeds = fallback_seeds(
                pool if pool.num_rr else None, k, backend=backend
            )
            return self._partial_result(
                seeds, k, eps, delta,
                generators=generators,
                reason=exc.reason,
                kpt_star=kpt_star,
                kpt_plus=kpt_plus,
            )

        return self._result_from(
            greedy.seeds,
            k,
            eps,
            delta,
            generators=generators,
            kpt_star=kpt_star,
            kpt_plus=kpt_plus,
            theta=theta,
            capped=self.max_rr_sets is not None and theta == self.max_rr_sets,
        )
