"""Pluggable coverage backends: the selection-facing surface of the pool.

Every seed-selection consumer — greedy, CELF, the OPIM bounds' coverage
inputs — now goes through a :class:`CoverageBackend` instead of reaching
into :class:`~repro.rrsets.collection.RRCollection` directly.  Two
implementations ship:

* :class:`ExactBackend` (the default) delegates verbatim to
  :func:`~repro.coverage.greedy.max_coverage_greedy` /
  :func:`~repro.coverage.celf.celf_max_coverage` and the collection's
  inverted-CSR surface (``coverage_counts`` / ``uncovered_counts`` /
  ``rrs_containing`` / ``per_set_sums``).  It is bit-identical to the
  pre-backend code path — same selections, same counters, same bounds.
* :class:`~repro.coverage.sketch.SketchBackend` replaces exact membership
  with per-node HyperLogLog rows (see :mod:`repro.coverage.sketch`): the
  inverted index never materializes, selection runs on register rows, and
  an error-adaptive precision ladder tightens the registers only when the
  OPIM-C bound gap demands it.

``resolve_backend`` maps the user-facing ``coverage_backend`` spec
(``"exact"`` / ``"sketch"`` / ``"auto"`` / a ready backend instance) to an
instance; ``"auto"`` picks the sketch tier only when the expected pool size
clears :data:`AUTO_SKETCH_THETA`.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Union

import numpy as np

from repro.coverage.celf import celf_max_coverage
from repro.coverage.greedy import GreedyResult, max_coverage_greedy
from repro.utils.exceptions import ConfigurationError

#: accepted ``coverage_backend`` spec strings
COVERAGE_BACKENDS = ("exact", "sketch", "auto")

#: ``"auto"`` switches to the sketch tier when the expected pool size
#: (e.g. OPIM-C's ``theta_max``) reaches this many RR sets — below it the
#: exact structures are cheap enough that exactness wins.
AUTO_SKETCH_THETA = 1_000_000


class CoverageBackend(abc.ABC):
    """Protocol every coverage implementation serves selection through."""

    name: str = "base"

    @abc.abstractmethod
    def max_coverage(
        self,
        pool,
        select: int,
        *,
        topk: Optional[int] = None,
        out_degree: Optional[np.ndarray] = None,
        initial_covered=None,
        track_upper_bound: bool = True,
        excluded: Optional[List[int]] = None,
        metrics=None,
    ) -> GreedyResult:
        """Greedy max coverage over ``pool`` (see
        :func:`~repro.coverage.greedy.max_coverage_greedy`)."""

    @abc.abstractmethod
    def celf(
        self,
        pool,
        select: int,
        *,
        out_degree: Optional[np.ndarray] = None,
        initial_covered=None,
        metrics=None,
        batch: int = 64,
    ) -> GreedyResult:
        """CELF lazy greedy over ``pool`` (see
        :func:`~repro.coverage.celf.celf_max_coverage`)."""

    @abc.abstractmethod
    def coverage(self, pool, seeds: Iterable[int]) -> int:
        """``Lambda_R(S)`` — how many stored sets the seeds hit (exact in
        every backend: the Eq. 1 lower bound never carries sketch error)."""

    def certified_upper_coverage(
        self, coverage_upper: float, num_rr: int
    ) -> float:
        """Adjust an Eq. 2 coverage bound for backend estimation error.

        Exact backends return it unchanged; estimating backends inflate it
        so the downstream influence bound stays valid within their error
        model.
        """
        return coverage_upper

    def certificate(self) -> dict:
        """Approximation-certificate block for ``IMResult.extras``."""
        return {"backend": self.name}


class ExactBackend(CoverageBackend):
    """The inverted-CSR exact path, extracted behind the protocol.

    Pure delegation — every call forwards to the historical function with
    the caller's exact arguments, so selections, metrics, and bounds are
    bit-identical to the pre-refactor code (the counter baseline's ten
    original workloads pin this down).
    """

    name = "exact"

    def max_coverage(
        self,
        pool,
        select: int,
        *,
        topk: Optional[int] = None,
        out_degree: Optional[np.ndarray] = None,
        initial_covered=None,
        track_upper_bound: bool = True,
        excluded: Optional[List[int]] = None,
        metrics=None,
    ) -> GreedyResult:
        return max_coverage_greedy(
            pool,
            select,
            topk=topk,
            out_degree=out_degree,
            initial_covered=initial_covered,
            track_upper_bound=track_upper_bound,
            excluded=excluded,
            metrics=metrics,
        )

    def celf(
        self,
        pool,
        select: int,
        *,
        out_degree: Optional[np.ndarray] = None,
        initial_covered=None,
        metrics=None,
        batch: int = 64,
    ) -> GreedyResult:
        return celf_max_coverage(
            pool,
            select,
            out_degree=out_degree,
            initial_covered=initial_covered,
            metrics=metrics,
            batch=batch,
        )

    def coverage(self, pool, seeds: Iterable[int]) -> int:
        return int(pool.coverage(seeds))

    # -- exact selection surface (the RRCollection methods that moved
    # behind the backend; greedy/celf call them through the pool they are
    # handed, these passthroughs are the protocol's documented face) ------
    def coverage_counts(self, pool) -> np.ndarray:
        return pool.coverage_counts()

    def uncovered_counts(
        self, pool, nodes: np.ndarray, covered: np.ndarray
    ) -> np.ndarray:
        return pool.uncovered_counts(nodes, covered)

    def rrs_containing(self, pool, node: int) -> np.ndarray:
        return pool.rrs_containing(node)

    def per_set_sums(
        self, pool, values: np.ndarray, stop: Optional[int] = None
    ) -> np.ndarray:
        return pool.per_set_sums(values, stop=stop)


BackendSpec = Union[None, str, CoverageBackend]


def resolve_backend(
    spec: BackendSpec,
    *,
    theta_hint: Optional[int] = None,
    allow_sketch: bool = True,
    metrics=None,
    auto_threshold: int = AUTO_SKETCH_THETA,
) -> CoverageBackend:
    """Materialize a ``coverage_backend`` spec.

    ``theta_hint`` is the caller's expected final pool size (OPIM-C passes
    ``theta_max``); ``"auto"`` resolves to the sketch tier only when the
    hint clears ``auto_threshold``.  ``allow_sketch=False`` (an algorithm
    whose selection shape the sketch cannot serve, e.g. HIST's sentinel
    phases) degrades non-explicit sketch requests to exact — an *explicit*
    ``coverage_backend="sketch"`` on such an algorithm is rejected earlier,
    at ``run()`` validation.
    """
    if isinstance(spec, CoverageBackend):
        return spec
    if spec is None:
        spec = "exact"
    if spec not in COVERAGE_BACKENDS:
        raise ConfigurationError(
            f"coverage_backend must be one of "
            f"{', '.join(repr(b) for b in COVERAGE_BACKENDS)}, got {spec!r}"
        )
    if spec == "auto":
        spec = (
            "sketch"
            if (
                allow_sketch
                and theta_hint is not None
                and theta_hint >= auto_threshold
            )
            else "exact"
        )
    if spec == "sketch" and allow_sketch:
        from repro.coverage.sketch import SketchBackend

        backend: CoverageBackend = SketchBackend()
        if metrics is not None:
            metrics.set_gauge(
                "coverage.sketch_precision", backend.precision
            )
        return backend
    return ExactBackend()
