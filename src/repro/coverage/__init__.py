"""Max-coverage seed selection over RR-set collections."""

from repro.coverage.backend import (
    AUTO_SKETCH_THETA,
    COVERAGE_BACKENDS,
    CoverageBackend,
    ExactBackend,
    resolve_backend,
)
from repro.coverage.celf import celf_max_coverage
from repro.coverage.greedy import GreedyResult, max_coverage_greedy

__all__ = [
    "AUTO_SKETCH_THETA",
    "COVERAGE_BACKENDS",
    "CoverageBackend",
    "ExactBackend",
    "GreedyResult",
    "celf_max_coverage",
    "max_coverage_greedy",
    "resolve_backend",
]
