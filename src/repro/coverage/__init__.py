"""Max-coverage seed selection over RR-set collections."""

from repro.coverage.celf import celf_max_coverage
from repro.coverage.greedy import GreedyResult, max_coverage_greedy

__all__ = ["GreedyResult", "celf_max_coverage", "max_coverage_greedy"]
