"""CELF lazy greedy max-coverage — the heap-based alternative.

The default :func:`~repro.coverage.greedy.max_coverage_greedy` keeps every
node's marginal gain *exact* by decrementing on coverage (cost bounded by
the pool's total mass).  CELF [21] instead re-evaluates lazily: stale heap
entries are upper bounds by submodularity, so a popped node whose value is
still current must be the true argmax.  Which strategy wins depends on the
pool shape — decremental pays per covered-set mass up front, CELF pays
re-evaluation scans per selection.  Both are exposed so the ablation bench
can compare them; they select identical seed sets up to tie order.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from repro.coverage.greedy import GreedyResult
from repro.rrsets.collection import RRCollection
from repro.utils.exceptions import ConfigurationError


def celf_max_coverage(
    collection: RRCollection,
    select: int,
    out_degree: Optional[np.ndarray] = None,
    initial_covered: Optional[np.ndarray] = None,
    metrics=None,
    batch: int = 64,
) -> GreedyResult:
    """Greedy max-coverage via CELF lazy evaluation.

    Same selection semantics as
    :func:`repro.coverage.greedy.max_coverage_greedy` (including the
    Algorithm 6 out-degree tie-break) but without Eq. 2 upper-bound
    tracking, which needs exact gains (``upper_bound_coverage`` is ``inf``).

    Stale heap entries are re-evaluated in waves: up to ``batch`` entries
    are popped together and their marginals recomputed in one vectorized
    :meth:`~repro.rrsets.collection.RRCollection.uncovered_counts` pass
    over the inverted index.  Within a round marginals are constant, so a
    wave computes exactly the values a one-at-a-time loop would; a node is
    still only *selected* when its fresh value tops the heap, which keeps
    the seed sequence identical to the sequential formulation.  An optional
    ``metrics`` registry records ``coverage.selections`` and the lazy work
    measure ``coverage.lazy_reevaluations`` (wave re-evaluation may exceed
    the one-at-a-time count: a wave can refresh entries a sequential pop
    order would never have reached that round).
    """
    if getattr(collection, "is_sharded", False):
        from repro.coverage.sharded import sharded_celf_max_coverage

        return sharded_celf_max_coverage(
            collection,
            select,
            out_degree=out_degree,
            initial_covered=initial_covered,
            metrics=metrics,
            batch=batch,
        )
    n = collection.n
    if not 1 <= select <= n:
        raise ConfigurationError(f"select must lie in [1, {n}], got {select}")
    if batch < 1:
        raise ConfigurationError(f"batch must be >= 1, got {batch}")

    num_rr = collection.num_rr
    covered = (
        initial_covered.copy()
        if initial_covered is not None
        else np.zeros(num_rr, dtype=bool)
    )
    if initial_covered is not None and len(covered) != num_rr:
        raise ConfigurationError(
            f"initial_covered has {len(covered)} entries for {num_rr} RR sets"
        )
    rrs_containing = collection.rrs_containing
    uncovered_counts = collection.uncovered_counts

    def priority(v: int, gain: int):
        # Max-heap via negation; ties resolve toward larger out-degree,
        # then smaller id (matching the exact-gain implementation).
        degree = int(out_degree[v]) if out_degree is not None else 0
        return (-gain, -degree, v)

    gains = uncovered_counts(np.arange(n, dtype=np.int64), covered)
    heap = [priority(v, int(gains[v])) + (0,) for v in range(n)]
    heapq.heapify(heap)

    base = int(covered.sum())
    coverage = base
    coverage_history = [coverage]
    seeds: List[int] = []
    round_idx = 0
    reevaluations = 0

    while len(seeds) < select:
        round_idx += 1
        while True:
            if heap[0][3] == round_idx:
                neg_gain, _, v, _ = heapq.heappop(heap)
                break
            # Pop a wave of stale entries (stopping at the first fresh
            # one) and refresh them in a single vectorized pass.
            stale = []
            while heap and len(stale) < batch and heap[0][3] != round_idx:
                stale.append(heapq.heappop(heap))
            nodes = np.array([entry[2] for entry in stale], dtype=np.int64)
            fresh = uncovered_counts(nodes, covered)
            reevaluations += len(stale)
            for entry, gain in zip(stale, fresh.tolist()):
                heapq.heappush(heap, priority(entry[2], gain) + (round_idx,))
        seeds.append(v)
        gain = -neg_gain
        coverage += gain
        coverage_history.append(coverage)
        covered[rrs_containing(v)] = True

    if metrics is not None:
        metrics.inc("coverage.selections", len(seeds))
        metrics.inc("coverage.lazy_reevaluations", reevaluations)

    return GreedyResult(
        seeds=seeds,
        coverage=coverage,
        coverage_history=coverage_history,
        upper_bound_coverage=float("inf"),
        covered=covered,
    )
