"""Scatter-gather seed selection over shard-resident RR pools.

These are line-for-line mirrors of
:func:`~repro.coverage.greedy.max_coverage_greedy` and
:func:`~repro.coverage.celf.celf_max_coverage` that keep the RR sets in
the shard workers and move only per-node gain vectors.  The selection
sequence is **provably identical** to the single-pool implementations:

* The global gain of a node is the number of uncovered sets containing it;
  because the pool is *partitioned* across shards, that count is the plain
  sum of per-shard counts — no set is double-counted, so the gathered gain
  vector equals the single-pool gain vector entry for entry.
* Marking a selected node covers, on each shard, exactly the shard's slice
  of the sets the single-pool run would cover, and the returned members
  (with multiplicity) are the same decrement mass, merely shard-grouped —
  and ``np.subtract.at`` is order-independent.
* Argmax, tie-breaks (:func:`~repro.coverage.greedy._argmax`), the Eq. 2
  top-k bound (:func:`~repro.coverage.greedy._topk_sum`), and CELF's heap
  priorities all operate on those identical gain vectors, so every
  selection decision — and every ``coverage.*`` metric — matches.

Both entry points accept ``initial_covered`` either as a
:class:`~repro.engine.shards.ShardedSeedMask` (the sharded view's
``covered_mask``) or ``None``; arbitrary boolean masks have no global
meaning for a distributed pool and are rejected.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from repro.utils.exceptions import ConfigurationError


def _begin_selection(view, initial_covered):
    """Open a selection session; mark initial seeds; return base coverage."""
    from repro.engine.shards import ShardedSeedMask

    pool, role = view.shard_pool, view.role
    pool.select_begin(role, view.limits)
    base = 0
    seeds: List[int] = []
    if initial_covered is not None:
        if not isinstance(initial_covered, ShardedSeedMask):
            raise ConfigurationError(
                "sharded selection accepts initial_covered only as the "
                "view's own covered_mask(seeds); a raw boolean mask has no "
                "global meaning for a distributed pool"
            )
        seeds = initial_covered.seeds
        for s in seeds:
            newly, _ = pool.select_mark(role, s, want_decrements=False)
            base += newly
    return base, seeds


def _gather_covered(view) -> np.ndarray:
    """Assemble the distributed covered mask in global set order."""
    per_rank = view.shard_pool.select_covered(view.role)
    return view.assemble_global(per_rank).astype(bool, copy=False)


def sharded_max_coverage_greedy(
    view,
    select: int,
    topk: Optional[int] = None,
    out_degree: Optional[np.ndarray] = None,
    initial_covered=None,
    track_upper_bound: bool = True,
    excluded: Optional[List[int]] = None,
    metrics=None,
):
    """Exact-gain greedy over a :class:`~repro.engine.shards.ShardedPoolView`.

    Same parameters, result object, and selection sequence as
    :func:`~repro.coverage.greedy.max_coverage_greedy`.
    """
    from repro.coverage.greedy import GreedyResult, _argmax, _topk_sum

    n = view.n
    excluded = excluded or []
    if not 1 <= select <= n - len(set(excluded)):
        raise ConfigurationError(
            f"select must lie in [1, {n - len(set(excluded))}] "
            f"(n minus excluded), got {select}"
        )
    if topk is None:
        topk = select
    if topk < 1:
        raise ConfigurationError(f"topk must be positive, got {topk}")

    pool, role = view.shard_pool, view.role
    num_rr = view.num_rr
    gains = view.coverage_counts()
    try:
        base_coverage, initial_seeds = _begin_selection(view, initial_covered)
        if initial_seeds:
            # The single-pool version subtracts the members of every
            # initially covered set from the raw coverage counts; the
            # uncovered counts after marking the seeds are the same vector
            # (each covered set decrements each member exactly once).
            gains = pool.select_uncovered(role, np.arange(n, dtype=np.int64))

        coverage = base_coverage
        coverage_history = [coverage]
        upper_bound = float(num_rr) if track_upper_bound else float("inf")
        seeds: List[int] = []
        decrements = 0

        barred = np.zeros(n, dtype=bool)
        if excluded:
            barred[list(excluded)] = True

        for _ in range(select):
            if track_upper_bound:
                upper_bound = min(
                    upper_bound, coverage + _topk_sum(gains, topk)
                )
            if excluded:
                selectable = np.where(barred, np.int64(-1), gains)
                best = _argmax(selectable, out_degree)
            else:
                best = _argmax(gains, out_degree)
            seeds.append(best)
            coverage += int(gains[best])
            coverage_history.append(coverage)
            _, members = pool.select_mark(role, best, want_decrements=True)
            if len(members):
                np.subtract.at(gains, members, 1)
                decrements += len(members)
            gains[best] = -1  # never reselect
        if track_upper_bound:
            upper_bound = min(upper_bound, coverage + _topk_sum(gains, topk))
        covered = _gather_covered(view)
    finally:
        pool.select_end(role)

    if metrics is not None:
        metrics.inc("coverage.selections", len(seeds))
        metrics.inc("coverage.gain_decrements", decrements)

    return GreedyResult(
        seeds=seeds,
        coverage=coverage,
        coverage_history=coverage_history,
        upper_bound_coverage=upper_bound,
        covered=covered,
    )


def sharded_celf_max_coverage(
    view,
    select: int,
    out_degree: Optional[np.ndarray] = None,
    initial_covered=None,
    metrics=None,
    batch: int = 64,
):
    """CELF lazy greedy over a sharded view (see
    :func:`~repro.coverage.celf.celf_max_coverage`)."""
    from repro.coverage.greedy import GreedyResult

    n = view.n
    if not 1 <= select <= n:
        raise ConfigurationError(f"select must lie in [1, {n}], got {select}")
    if batch < 1:
        raise ConfigurationError(f"batch must be >= 1, got {batch}")

    pool, role = view.shard_pool, view.role
    try:
        base, _ = _begin_selection(view, initial_covered)

        def priority(v: int, gain: int):
            degree = int(out_degree[v]) if out_degree is not None else 0
            return (-gain, -degree, v)

        gains = pool.select_uncovered(role, np.arange(n, dtype=np.int64))
        heap = [priority(v, int(gains[v])) + (0,) for v in range(n)]
        heapq.heapify(heap)

        coverage = base
        coverage_history = [coverage]
        seeds: List[int] = []
        round_idx = 0
        reevaluations = 0

        while len(seeds) < select:
            round_idx += 1
            while True:
                if heap[0][3] == round_idx:
                    neg_gain, _, v, _ = heapq.heappop(heap)
                    break
                stale = []
                while heap and len(stale) < batch and heap[0][3] != round_idx:
                    stale.append(heapq.heappop(heap))
                nodes = np.array([entry[2] for entry in stale], dtype=np.int64)
                fresh = pool.select_uncovered(role, nodes)
                reevaluations += len(stale)
                for entry, gain in zip(stale, fresh.tolist()):
                    heapq.heappush(
                        heap, priority(entry[2], gain) + (round_idx,)
                    )
            seeds.append(v)
            coverage += -neg_gain
            coverage_history.append(coverage)
            pool.select_mark(role, v, want_decrements=False)
        covered = _gather_covered(view)
    finally:
        pool.select_end(role)

    if metrics is not None:
        metrics.inc("coverage.selections", len(seeds))
        metrics.inc("coverage.lazy_reevaluations", reevaluations)

    return GreedyResult(
        seeds=seeds,
        coverage=coverage,
        coverage_history=coverage_history,
        upper_bound_coverage=float("inf"),
        covered=covered,
    )
