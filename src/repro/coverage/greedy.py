"""Greedy maximum coverage (paper Algorithms 1 and 6).

The greedy algorithm repeatedly selects the node with the largest *marginal
coverage* — the number of not-yet-covered RR sets it belongs to — giving the
classic ``(1 - 1/e)`` approximation of the best size-k cover, and, through
Lemma 1, of the influence-maximizing seed set.

This implementation keeps marginal gains **exact** at every step with the
decremental trick: when a node is selected, each newly covered RR set
decrements the gain of every node it contains.  Total maintenance cost is
bounded by the pool's total mass, and exact gains let us evaluate the
OPIM upper bound (Eq. 2) — ``min_i (Lambda(S_i) + sum of the k largest
marginals w.r.t. S_i)`` — at *every* prefix at O(n) extra cost per step.

Algorithm 6's revision for HIST is the ``out_degree`` tie-break: among nodes
with equal maximal marginal coverage, prefer the one with the largest
out-degree, since high-out-degree sentinels are hit sooner by later RR sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.rrsets.collection import RRCollection
from repro.utils.exceptions import ConfigurationError


@dataclass
class GreedyResult:
    """Outcome of one greedy max-coverage run.

    ``coverage_history[i]`` is the absolute coverage of the first ``i``
    selections (including any initially covered sets), so it has length
    ``len(seeds) + 1``.  ``upper_bound_coverage`` is the Eq. 2 coverage upper
    bound on the optimal size-``topk`` seed set (``inf`` when tracking was
    disabled).
    """

    seeds: List[int]
    coverage: int
    coverage_history: List[int] = field(repr=False)
    upper_bound_coverage: float
    #: boolean per-set membership mask — ``None`` under the sketch backend,
    #: which tracks coverage as a register union, not per-set bits
    covered: Optional[np.ndarray] = field(repr=False)


def max_coverage_greedy(
    collection: RRCollection,
    select: int,
    topk: Optional[int] = None,
    out_degree: Optional[np.ndarray] = None,
    initial_covered: Optional[np.ndarray] = None,
    track_upper_bound: bool = True,
    excluded: Optional[List[int]] = None,
    metrics=None,
) -> GreedyResult:
    """Select ``select`` seeds greedily by marginal coverage.

    Parameters
    ----------
    collection:
        The RR-set pool to cover.
    select:
        Number of seeds to pick (1 <= select <= n).
    topk:
        Size of the optimal set the Eq. 2 upper bound refers to; defaults to
        ``select``.  HIST's IM-Sentinel phase selects ``k - b`` seeds but
        still bounds the size-``k`` optimum, hence the separate knob.
    out_degree:
        When given, enables Algorithm 6's tie-break: ties in marginal
        coverage resolve toward the larger out-degree.
    initial_covered:
        Boolean mask of RR sets to treat as already covered (HIST removes
        sentinel-hit sets this way); the returned coverages are absolute,
        i.e. include these.
    track_upper_bound:
        Disable to skip the per-step top-k scan when the bound is not needed.
    excluded:
        Nodes greedy must never select (HIST bars the sentinels from
        re-selection in the IM-Sentinel phase).  They still participate in
        the Eq. 2 top-k sums — excluding them there would invalidate the
        bound on the unconstrained optimum... except their marginal gains
        are zero by construction (their RR sets are initially covered), so
        nothing changes.
    metrics:
        Optional :class:`~repro.observability.registry.MetricsRegistry`;
        when given, records ``coverage.selections`` and the decremental
        maintenance mass ``coverage.gain_decrements``.
    """
    if getattr(collection, "is_sharded", False):
        # Shard-resident pool: scatter-gather selection (identical seed
        # sequence; see repro.coverage.sharded).
        from repro.coverage.sharded import sharded_max_coverage_greedy

        return sharded_max_coverage_greedy(
            collection,
            select,
            topk=topk,
            out_degree=out_degree,
            initial_covered=initial_covered,
            track_upper_bound=track_upper_bound,
            excluded=excluded,
            metrics=metrics,
        )
    n = collection.n
    excluded = excluded or []
    if not 1 <= select <= n - len(set(excluded)):
        raise ConfigurationError(
            f"select must lie in [1, {n - len(set(excluded))}] "
            f"(n minus excluded), got {select}"
        )
    if topk is None:
        topk = select
    if topk < 1:
        raise ConfigurationError(f"topk must be positive, got {topk}")

    num_rr = collection.num_rr

    # The gain vector starts from the pool's cached per-node coverage
    # counts (maintained incrementally on append — no index rebuild here).
    gains = collection.coverage_counts()
    covered = (
        initial_covered.copy()
        if initial_covered is not None
        else np.zeros(num_rr, dtype=bool)
    )
    if initial_covered is not None and covered.any():
        if len(covered) != num_rr:
            raise ConfigurationError(
                f"initial_covered has {len(covered)} entries for {num_rr} RR sets"
            )
        members = collection.nodes_of_sets(np.flatnonzero(covered))
        np.subtract.at(gains, members, 1)

    base_coverage = int(covered.sum())
    coverage = base_coverage
    coverage_history = [coverage]
    # No seed set can cover more than the pool itself; the per-step sums
    # below may double-count RR sets shared by the top-k candidates, so
    # the pool size is a valid (and sometimes binding) cap on Eq. 2.
    upper_bound = float(num_rr) if track_upper_bound else float("inf")
    seeds: List[int] = []
    decrements = 0

    barred = np.zeros(n, dtype=bool)
    if excluded:
        barred[list(excluded)] = True

    for _ in range(select):
        if track_upper_bound:
            upper_bound = min(upper_bound, coverage + _topk_sum(gains, topk))
        if excluded:
            selectable = np.where(barred, np.int64(-1), gains)
            best = _argmax(selectable, out_degree)
        else:
            best = _argmax(gains, out_degree)
        seeds.append(best)
        coverage += int(gains[best])
        coverage_history.append(coverage)
        # Decremental maintenance, vectorized: every RR set newly covered by
        # ``best`` decrements the gain of each of its members in one
        # ``np.subtract.at`` over the flat pool (duplicates across sets are
        # exactly the multiplicities the decrement needs).
        containing = collection.rrs_containing(best)
        newly = containing[~covered[containing]]
        if len(newly):
            covered[newly] = True
            members = collection.nodes_of_sets(newly)
            np.subtract.at(gains, members, 1)
            decrements += len(members)
        gains[best] = -1  # never reselect
    if track_upper_bound:
        upper_bound = min(upper_bound, coverage + _topk_sum(gains, topk))
    if metrics is not None:
        metrics.inc("coverage.selections", len(seeds))
        metrics.inc("coverage.gain_decrements", decrements)

    return GreedyResult(
        seeds=seeds,
        coverage=coverage,
        coverage_history=coverage_history,
        upper_bound_coverage=upper_bound,
        covered=covered,
    )


def _topk_sum(gains: np.ndarray, topk: int) -> int:
    """Sum of the ``topk`` largest non-negative gains."""
    if topk >= len(gains):
        top = gains
    else:
        top = np.partition(gains, len(gains) - topk)[len(gains) - topk:]
    return int(np.maximum(top, 0).sum())


def _argmax(gains: np.ndarray, out_degree: Optional[np.ndarray]) -> int:
    """Best node by gain; optional out-degree tie-break (Algorithm 6)."""
    if out_degree is None:
        return int(np.argmax(gains))
    best_gain = gains.max()
    candidates = np.flatnonzero(gains == best_gain)
    if len(candidates) == 1:
        return int(candidates[0])
    return int(candidates[np.argmax(out_degree[candidates])])
