"""Count-distinct coverage sketches: the memory tier behind ``coverage_backend="sketch"``.

At production theta the exact coverage structures — the inverted CSR index
plus the per-node gain vector — dominate resident memory and drive
``byte_cap`` eviction of warm banks.  Following "Fast and Error-Adaptive
Influence Maximization based on Count-Distinct Sketches" (arXiv 2105.04023),
this module replaces exact RR-set membership with one HyperLogLog register
row per node: node ``v``'s row sketches the *set of RR-set ids containing
v*, so

* the per-node singleton coverage is the row's cardinality estimate,
* the marginal gain of ``v`` against an already-covered collection is
  ``est(max(row_v, covered_row)) - est(covered_row)`` (HLL union is the
  elementwise register maximum, which is lossless for set union), and
* merging shards is the same elementwise maximum — a partitioned pool's
  rows union exactly, so scatter-gather selection ships ``n * m`` register
  bytes once instead of per-round gain vectors.

Registers are ``(n, m=2**precision)`` uint8, maintained *incrementally*
from :meth:`~repro.rrsets.collection.RRCollection.add` /
``add_batch`` (hash each new set id once, scatter-max into its members'
rows), so in sketch mode the inverted index never materializes.  Hashing
is a fixed seeded splitmix64 finalizer — fully deterministic, no
``PYTHONHASHSEED`` dependence — and the estimator is the standard HLL
harmonic mean with linear-counting small-range correction, giving relative
standard error ``1.04 / sqrt(m)``.

:class:`SketchBackend` is the :class:`~repro.coverage.backend
.CoverageBackend` built on these sketches, including the error-adaptive
precision ladder (:meth:`SketchBackend.escalate`) that OPIM-C's doubling
loop pulls only when the sketch error band overlaps its stopping bound gap.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from repro.coverage.backend import CoverageBackend
from repro.utils.exceptions import ConfigurationError

#: default number of register index bits (m = 256 registers/node, ~6.5%
#: relative standard error) — the memory/accuracy sweet spot bench_sketch
#: measures against the exact structures.
DEFAULT_PRECISION = 8

#: the ladder never escalates past this many index bits by default
#: (m = 4096, ~1.6% error) — beyond it the registers stop being the small
#: side of the memory trade.
DEFAULT_MAX_PRECISION = 12

#: fixed hash salt; changing it reshuffles every estimate, so it is part of
#: the deterministic sketch identity recorded in bank state.
DEFAULT_HASH_SEED = 0x5EEDC0DE

#: sets ingested per vectorized scatter-max chunk
_INGEST_CHUNK = 1 << 16

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D4ECDA8F1E82DB)

#: 2**-r lookup for the harmonic mean (register values never exceed 64)
_POW2_NEG = np.float64(2.0) ** -np.arange(65, dtype=np.float64)


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array."""
    x = (x ^ (x >> np.uint64(30))) * _MIX1
    x = (x ^ (x >> np.uint64(27))) * _MIX2
    return x ^ (x >> np.uint64(31))


def _bit_length64(x: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for uint64 values.

    Split into 32-bit halves so ``log2`` runs on integers float64 holds
    exactly — the full 64-bit value would round near the top bits.
    """
    hi = (x >> np.uint64(32)).astype(np.int64)
    lo = (x & np.uint64(0xFFFFFFFF)).astype(np.int64)
    bl_hi = np.floor(np.log2(np.maximum(hi, 1))).astype(np.int64) + 1
    bl_lo = np.floor(np.log2(np.maximum(lo, 1))).astype(np.int64) + 1
    bl_lo = np.where(lo > 0, bl_lo, 0)
    return np.where(hi > 0, bl_hi + 32, bl_lo)


def hash_set_ids(ids: np.ndarray, precision: int, hash_seed: int):
    """Deterministic (register index, rank) pair per RR-set id.

    The low ``precision`` bits of the mixed hash pick the register; the
    rank is the leading-zero count of the remaining ``64 - precision`` bits
    plus one (the classic HLL rho), capped implicitly by the field width.
    """
    x = np.asarray(ids, dtype=np.uint64)
    h = _mix64((x + np.uint64(1)) * _GOLDEN + np.uint64(hash_seed))
    j = (h & np.uint64((1 << precision) - 1)).astype(np.int64)
    w = h >> np.uint64(precision)
    rho = (64 - precision) - _bit_length64(w) + 1
    return j, rho.astype(np.uint8)


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


def estimate_distinct(registers: np.ndarray) -> np.ndarray:
    """HLL cardinality estimate along the last axis of a register array.

    Accepts a single ``(m,)`` row or an ``(n, m)`` stack; returns a float64
    array one dimension smaller.  Standard bias-corrected harmonic mean
    with the linear-counting small-range correction.
    """
    regs = np.asarray(registers)
    m = regs.shape[-1]
    inv_sum = _POW2_NEG[regs].sum(axis=-1)
    raw = _alpha(m) * m * m / inv_sum
    zeros = m - np.count_nonzero(regs, axis=-1)
    linear = m * np.log(m / np.maximum(zeros, 1))
    return np.where((raw <= 2.5 * m) & (zeros > 0), linear, raw)


def relative_std_error(precision: int) -> float:
    """The HLL relative standard error ``1.04 / sqrt(2**precision)``."""
    return 1.04 / math.sqrt(1 << precision)


class CoverageSketch:
    """Per-node HyperLogLog rows over the RR-set ids containing each node.

    Attach one to an :class:`~repro.rrsets.collection.RRCollection` via
    ``attach_sketch`` and the collection keeps it current on every append;
    ``replace_sets`` (repair rewrites set contents in place) marks it stale
    and :meth:`sync` rebuilds from the flat pool — HLLs cannot delete.
    """

    def __init__(
        self,
        n: int,
        precision: int = DEFAULT_PRECISION,
        hash_seed: int = DEFAULT_HASH_SEED,
    ) -> None:
        if not 4 <= precision <= 16:
            raise ConfigurationError(
                f"sketch precision must lie in [4, 16], got {precision}"
            )
        self.n = int(n)
        self.precision = int(precision)
        self.m = 1 << self.precision
        self.hash_seed = int(hash_seed)
        self.registers = np.zeros((self.n, self.m), dtype=np.uint8)
        #: RR-set ids ``[0, num_ingested)`` are reflected in the registers
        self.num_ingested = 0
        #: set when stored sets were rewritten in place (repair): the
        #: registers over-count until :meth:`sync` rebuilds them
        self.stale = False

    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        return int(self.registers.nbytes)

    def fresh(self) -> "CoverageSketch":
        """An empty sketch with the same identity (precision, salt)."""
        return CoverageSketch(self.n, self.precision, self.hash_seed)

    def spec(self) -> dict:
        """JSON-able identity; registers re-derive deterministically from
        the pool, so only the identity travels in bank state."""
        return {
            "precision": self.precision,
            "hash_seed": self.hash_seed,
            "num_ingested": int(self.num_ingested),
        }

    @classmethod
    def from_spec(cls, n: int, spec: dict) -> "CoverageSketch":
        return cls(
            int(n), int(spec["precision"]), int(spec.get("hash_seed", DEFAULT_HASH_SEED))
        )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def _scatter(
        self, set_ids: np.ndarray, nodes: np.ndarray, sizes: np.ndarray
    ) -> None:
        j, rho = hash_set_ids(set_ids, self.precision, self.hash_seed)
        j_flat = np.repeat(j, sizes)
        rho_flat = np.repeat(rho, sizes)
        flat = nodes.astype(np.int64) * self.m + j_flat
        np.maximum.at(self.registers.reshape(-1), flat, rho_flat)

    def observe(self, rr_id: int, nodes: np.ndarray) -> None:
        """Incremental hook for a single appended set."""
        self.observe_batch(rr_id, np.asarray(nodes), np.array([len(nodes)]))

    def observe_batch(
        self, first_id: int, nodes: np.ndarray, sizes: np.ndarray
    ) -> None:
        """Incremental hook for a contiguous appended batch.

        A non-contiguous append (should not happen on an append-only pool)
        degrades to staleness rather than corrupting the estimates.
        """
        if self.stale:
            return
        if first_id != self.num_ingested:
            self.stale = True
            return
        sizes = np.asarray(sizes, dtype=np.int64)
        count = len(sizes)
        ids = np.arange(first_id, first_id + count, dtype=np.int64)
        self._scatter(ids, np.asarray(nodes), sizes)
        self.num_ingested += count

    def mark_stale(self) -> None:
        self.stale = True

    def ingest_range(
        self,
        coll,
        start: int,
        stop: int,
        *,
        id_stride: int = 1,
        id_offset: int = 0,
    ) -> None:
        """Ingest stored sets ``[start, stop)`` straight from the flat pool.

        ``id_stride``/``id_offset`` remap local set ids before hashing —
        shard workers use ``(stride=shards, offset=rank)`` so ids stay
        globally distinct and the merged (elementwise-max) registers count
        the union of a partitioned pool exactly.
        """
        indptr = coll.rr_indptr
        nodes = coll.rr_nodes
        for lo in range(start, stop, _INGEST_CHUNK):
            hi = min(lo + _INGEST_CHUNK, stop)
            sizes = np.diff(indptr[lo: hi + 1]).astype(np.int64)
            chunk = nodes[indptr[lo]: indptr[hi]]
            ids = (
                np.arange(lo, hi, dtype=np.int64) * id_stride + id_offset
            )
            self._scatter(ids, chunk, sizes)
        self.num_ingested = max(self.num_ingested, int(stop))

    def sync(self, coll) -> bool:
        """Bring the sketch up to date with ``coll``; True if rebuilt.

        A stale (or rewound) sketch zeroes its registers and re-ingests the
        whole pool; otherwise only the un-ingested tail is scattered in.
        """
        rebuilt = False
        if self.stale or self.num_ingested > coll.num_rr:
            self.registers.fill(0)
            self.num_ingested = 0
            self.stale = False
            rebuilt = True
        if self.num_ingested < coll.num_rr:
            self.ingest_range(coll, self.num_ingested, coll.num_rr)
        return rebuilt

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def node_estimates(self) -> np.ndarray:
        """Estimated per-node singleton coverages (the sketch gain vector)."""
        return estimate_distinct(self.registers)

    def merge(self, other: "CoverageSketch") -> None:
        """Union another sketch in (elementwise register max)."""
        if (other.precision, other.hash_seed) != (self.precision, self.hash_seed):
            raise ConfigurationError(
                "cannot merge sketches with different precision or salt"
            )
        np.maximum(self.registers, other.registers, out=self.registers)


def _topk_sum_float(gains: np.ndarray, topk: int) -> float:
    if topk >= len(gains):
        top = gains
    else:
        top = np.partition(gains, len(gains) - topk)[len(gains) - topk:]
    return float(np.maximum(top, 0.0).sum())


def _argmax_float(gains: np.ndarray, out_degree: Optional[np.ndarray]) -> int:
    if out_degree is None:
        return int(np.argmax(gains))
    best_gain = gains.max()
    candidates = np.flatnonzero(gains == best_gain)
    if len(candidates) == 1:
        return int(candidates[0])
    return int(candidates[np.argmax(out_degree[candidates])])


def sketch_max_coverage(
    registers: np.ndarray,
    select: int,
    *,
    num_rr: int,
    topk: Optional[int] = None,
    out_degree: Optional[np.ndarray] = None,
    track_upper_bound: bool = True,
    metrics=None,
):
    """Greedy max coverage over HLL register rows (no inverted index).

    The marginal gain of ``v`` is ``est(max(row_v, covered)) -
    est(covered)`` where ``covered`` is the running union row of the
    selected seeds.  Estimates are clamped to the pool size (an HLL can
    overshoot it); the Eq. 2-shaped upper bound is tracked on the
    *estimated* gains and certified by the caller's error inflation.
    Returns a :class:`~repro.coverage.greedy.GreedyResult` whose
    ``covered`` is ``None`` — sketch mode has no per-set membership.
    """
    from repro.coverage.greedy import GreedyResult

    n = len(registers)
    if not 1 <= select <= n:
        raise ConfigurationError(f"select must lie in [1, {n}], got {select}")
    if topk is None:
        topk = select
    if topk < 1:
        raise ConfigurationError(f"topk must be positive, got {topk}")

    m = registers.shape[1]
    covered_row = np.zeros(m, dtype=np.uint8)
    gains = estimate_distinct(registers)
    coverage = 0.0
    coverage_history: List[int] = [0]
    upper = float(num_rr) if track_upper_bound else float("inf")
    seeds: List[int] = []

    for _ in range(select):
        if track_upper_bound:
            upper = min(upper, coverage + _topk_sum_float(gains, topk))
        best = _argmax_float(gains, out_degree)
        seeds.append(best)
        np.maximum(covered_row, registers[best], out=covered_row)
        coverage = min(float(estimate_distinct(covered_row)), float(num_rr))
        coverage_history.append(int(round(coverage)))
        union = np.maximum(registers, covered_row[np.newaxis, :])
        gains = estimate_distinct(union) - coverage
        np.maximum(gains, 0.0, out=gains)
        gains[seeds] = -1.0
    if track_upper_bound:
        upper = min(upper, coverage + _topk_sum_float(gains, topk))

    if metrics is not None:
        metrics.inc("coverage.selections", len(seeds))
        metrics.inc("coverage.sketch_selections", len(seeds))

    return GreedyResult(
        seeds=seeds,
        coverage=int(round(coverage)),
        coverage_history=coverage_history,
        upper_bound_coverage=float(min(upper, float(num_rr))),
        covered=None,
    )


def exact_coverage_scan(pool, seeds: Iterable[int]) -> int:
    """Exact ``Lambda_R(S)`` without the inverted index.

    One node-indicator ``per_set_sums`` pass over the flat pool (or the
    sharded scatter-gather equivalent): a set is covered iff its seed-hit
    count is positive.  This is how sketch mode validates seed sets — the
    Eq. 1 lower bound stays exact while the inverted CSR never builds.
    """
    indicator = np.zeros(pool.n, dtype=np.int64)
    idx = sorted({int(s) for s in seeds})
    if not idx:
        return 0
    indicator[idx] = 1
    sums = pool.per_set_sums(indicator)
    return int(np.count_nonzero(sums))


class SketchBackend(CoverageBackend):
    """Coverage backend over per-node HLL sketches with a precision ladder.

    Selection and the Eq. 2 coverage upper bound run on register rows; seed
    validation (:meth:`coverage`) stays exact via an index-free pool scan,
    so the Eq. 1 lower bound carries no sketch error.  The backend owns the
    current ladder rung: :meth:`escalate` raises the precision one bit, and
    the next selection re-ingests the pool at the finer resolution.
    """

    name = "sketch"

    def __init__(
        self,
        precision: int = DEFAULT_PRECISION,
        max_precision: int = DEFAULT_MAX_PRECISION,
        hash_seed: int = DEFAULT_HASH_SEED,
        confidence: float = 3.0,
    ) -> None:
        if not 4 <= precision <= 16:
            raise ConfigurationError(
                f"sketch precision must lie in [4, 16], got {precision}"
            )
        if max_precision < precision or max_precision > 16:
            raise ConfigurationError(
                f"max_precision must lie in [{precision}, 16], "
                f"got {max_precision}"
            )
        if confidence <= 0:
            raise ConfigurationError(
                f"confidence must be positive, got {confidence}"
            )
        self.precision = int(precision)
        self.max_precision = int(max_precision)
        self.hash_seed = int(hash_seed)
        self.confidence = float(confidence)
        self.escalations = 0
        #: raw (uninflated) Eq. 2 coverage bound of the latest selection —
        #: what the ladder's overlap test reads
        self.last_upper_coverage: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        return 1 << self.precision

    @property
    def rel_std_error(self) -> float:
        return relative_std_error(self.precision)

    @property
    def epsilon_sketch(self) -> float:
        """The certified relative error band: ``confidence * rel_std_error``."""
        return self.confidence * self.rel_std_error

    def can_escalate(self) -> bool:
        return self.precision < self.max_precision

    def escalate(self, metrics=None) -> int:
        """Climb one ladder rung; the next selection re-ingests at 2x m."""
        if not self.can_escalate():
            raise ConfigurationError(
                f"sketch precision ladder exhausted at {self.precision} bits"
            )
        self.precision += 1
        self.escalations += 1
        if metrics is not None:
            metrics.inc("coverage.sketch_escalations")
            metrics.set_gauge("coverage.sketch_precision", self.precision)
        return self.precision

    # ------------------------------------------------------------------
    def _registers_for(self, pool, metrics=None) -> np.ndarray:
        """Current-precision registers for a pool, reusing attached state.

        A full collection keeps its incrementally maintained sketch (tail
        sets are scattered in; precision changes and staleness trigger a
        rebuild).  A strict prefix view gets a transient re-ingest — its
        registers must not see the sets beyond the prefix.
        """
        from repro.rrsets.collection import RRCollection, RRPrefixView

        if isinstance(pool, RRCollection):
            sketch = pool.coverage_sketch
            if (
                sketch is None
                or sketch.precision != self.precision
                or sketch.hash_seed != self.hash_seed
            ):
                sketch = pool.attach_sketch(
                    CoverageSketch(pool.n, self.precision, self.hash_seed)
                )
                sketch.ingest_range(pool, 0, pool.num_rr)
                if metrics is not None:
                    metrics.inc("coverage.sketch_reingests")
            elif sketch.sync(pool) and metrics is not None:
                metrics.inc("coverage.sketch_reingests")
            registers = sketch.registers
        elif isinstance(pool, RRPrefixView):
            transient = CoverageSketch(pool.n, self.precision, self.hash_seed)
            transient.ingest_range(pool._coll, 0, pool.num_rr)
            if metrics is not None:
                metrics.inc("coverage.sketch_reingests")
            registers = transient.registers
        else:
            raise ConfigurationError(
                f"sketch backend cannot serve pool type "
                f"{type(pool).__name__}"
            )
        if metrics is not None:
            metrics.set_gauge(
                "coverage.sketch_register_bytes", int(registers.nbytes)
            )
            metrics.set_gauge("coverage.sketch_precision", self.precision)
        return registers

    # ------------------------------------------------------------------
    # CoverageBackend surface
    # ------------------------------------------------------------------
    def max_coverage(
        self,
        pool,
        select: int,
        *,
        topk: Optional[int] = None,
        out_degree: Optional[np.ndarray] = None,
        initial_covered=None,
        track_upper_bound: bool = True,
        excluded: Optional[List[int]] = None,
        metrics=None,
    ):
        if initial_covered is not None or excluded:
            raise ConfigurationError(
                "the sketch coverage backend supports plain greedy "
                "selection only; initial_covered/excluded (HIST's "
                "sentinel machinery) require coverage_backend='exact'"
            )
        if getattr(pool, "is_sharded", False):
            registers = pool.sketch_registers(self.precision, self.hash_seed)
            if metrics is not None:
                metrics.inc("coverage.sketch_shard_gathers")
                metrics.set_gauge(
                    "coverage.sketch_register_bytes", int(registers.nbytes)
                )
                metrics.set_gauge(
                    "coverage.sketch_precision", self.precision
                )
        else:
            registers = self._registers_for(pool, metrics)
        result = sketch_max_coverage(
            registers,
            select,
            num_rr=pool.num_rr,
            topk=topk,
            out_degree=out_degree,
            track_upper_bound=track_upper_bound,
            metrics=metrics,
        )
        self.last_upper_coverage = (
            result.upper_bound_coverage if track_upper_bound else None
        )
        return result

    def celf(
        self,
        pool,
        select: int,
        *,
        out_degree: Optional[np.ndarray] = None,
        initial_covered=None,
        metrics=None,
        batch: int = 64,
    ):
        raise ConfigurationError(
            "CELF's lazy-gain invariant needs exact decremental marginals; "
            "use coverage_backend='exact' or plain greedy selection"
        )

    def coverage(self, pool, seeds: Iterable[int]) -> int:
        return exact_coverage_scan(pool, seeds)

    def certified_upper_coverage(
        self, coverage_upper: float, num_rr: int
    ) -> float:
        """Inflate an estimated Eq. 2 coverage bound by the error band.

        The true bound exceeds the estimate by more than ``epsilon_sketch``
        (relatively) only outside the ``confidence``-sigma band; the pool
        size remains a hard cap either way.
        """
        if not math.isfinite(coverage_upper):
            return coverage_upper
        return min(coverage_upper * (1.0 + self.epsilon_sketch), float(num_rr))

    def certificate(self) -> dict:
        """The paper-style approximation certificate for ``IMResult.extras``.

        Records the sketch identity and the first-order error model backing
        the certified bound ratio: the Eq. 1 lower bound is exact, the
        Eq. 2 upper bound was inflated by ``epsilon_sketch = confidence *
        1.04/sqrt(m)``, so the reported ratio holds whenever the register
        estimates stayed within their ``confidence``-sigma band.
        """
        return {
            "backend": self.name,
            "precision": self.precision,
            "registers_per_node": self.m,
            "hash_seed": self.hash_seed,
            "rel_std_error": self.rel_std_error,
            "confidence": self.confidence,
            "epsilon_sketch": self.epsilon_sketch,
            "escalations": self.escalations,
            "lower_bound_exact": True,
        }
