"""Live-edge snapshot estimation and exact influence for tiny graphs.

Section 2.2 of the paper describes the IC model's *live-edge* view: sample
a subgraph ``g`` by keeping each edge ``e`` independently with probability
``p(e)``; the influence of ``S`` is the expected number of nodes reachable
from ``S`` in ``g``.  Two tools build on that view:

* :func:`snapshot_spread` / :func:`estimate_spread_snapshots` — Monte-Carlo
  over sampled snapshots: a third unbiased estimator alongside forward
  simulation and RR sets.
* :func:`exact_influence_ic` — *exact* influence by enumerating all
  ``2^m`` live-edge patterns.  Exponential, so it demands a tiny graph —
  but it turns the test suite's statistical comparisons into equalities:
  every estimator in the library is validated against it.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Iterable, List, Sequence

import numpy as np

from repro.estimation.montecarlo import SpreadEstimate
from repro.graphs.csr import CSRGraph
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

#: enumeration guard: 2^m snapshots must stay enumerable
MAX_EXACT_EDGES = 22


def _reach_count(
    n: int,
    seeds: Sequence[int],
    adjacency: Sequence[Sequence[int]],
) -> int:
    seen = [False] * n
    queue = deque()
    for s in seeds:
        if not seen[s]:
            seen[s] = True
            queue.append(s)
    count = len(queue)
    while queue:
        u = queue.popleft()
        for w in adjacency[u]:
            if not seen[w]:
                seen[w] = True
                count += 1
                queue.append(w)
    return count


def snapshot_spread(
    graph: CSRGraph, seeds: Sequence[int], rng: np.random.Generator
) -> int:
    """Spread of ``seeds`` in one sampled live-edge snapshot."""
    src, dst, probs = graph.edges()
    live = rng.random(len(src)) < probs
    adjacency: List[List[int]] = [[] for _ in range(graph.n)]
    for u, w in zip(src[live], dst[live]):
        adjacency[u].append(int(w))
    return _reach_count(graph.n, list(dict.fromkeys(map(int, seeds))), adjacency)


def estimate_spread_snapshots(
    graph: CSRGraph,
    seeds: Iterable[int],
    num_snapshots: int = 1000,
    seed: SeedLike = None,
) -> SpreadEstimate:
    """Monte-Carlo influence estimate by averaging live-edge snapshots.

    Distribution-identical to :func:`~repro.estimation.montecarlo
    .estimate_spread` under IC (the live-edge view is the same process);
    kept separate because sampling whole snapshots costs ``O(m)`` each, the
    very cost Algorithm 2's reverse traversal avoids.
    """
    seed_list = list(dict.fromkeys(int(s) for s in seeds))
    for s in seed_list:
        if not 0 <= s < graph.n:
            raise ConfigurationError(f"seed {s} out of range [0, {graph.n})")
    if num_snapshots < 1:
        raise ConfigurationError("num_snapshots must be >= 1")
    if not seed_list:
        return SpreadEstimate(0.0, 0.0, num_snapshots)
    rng = as_generator(seed)
    values = np.fromiter(
        (snapshot_spread(graph, seed_list, rng) for _ in range(num_snapshots)),
        dtype=np.float64,
        count=num_snapshots,
    )
    return SpreadEstimate(
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if num_snapshots > 1 else 0.0,
        num_simulations=num_snapshots,
    )


def exact_influence_ic(graph: CSRGraph, seeds: Iterable[int]) -> float:
    """Exact expected IC influence by live-edge enumeration.

    Sums ``P(pattern) * |reachable(S, pattern)|`` over all ``2^m`` edge
    patterns.  Guarded to ``m <= MAX_EXACT_EDGES``; the intended use is
    validating estimators on hand-built graphs.
    """
    if graph.m > MAX_EXACT_EDGES:
        raise ConfigurationError(
            f"exact enumeration needs m <= {MAX_EXACT_EDGES}, got m={graph.m}"
        )
    seed_list = list(dict.fromkeys(int(s) for s in seeds))
    for s in seed_list:
        if not 0 <= s < graph.n:
            raise ConfigurationError(f"seed {s} out of range [0, {graph.n})")
    if not seed_list:
        return 0.0
    src, dst, probs = graph.edges()
    total = 0.0
    for pattern in itertools.product((False, True), repeat=graph.m):
        probability = 1.0
        adjacency: List[List[int]] = [[] for _ in range(graph.n)]
        for live, u, w, p in zip(pattern, src, dst, probs):
            if live:
                probability *= p
                adjacency[int(u)].append(int(w))
            else:
                probability *= 1.0 - p
            if probability == 0.0:
                break
        if probability == 0.0:
            continue
        total += probability * _reach_count(graph.n, seed_list, adjacency)
    return total


def exact_rr_hit_probability(graph: CSRGraph, seeds: Iterable[int]) -> float:
    """Exact ``Pr[S intersects a random RR set]`` — Lemma 1's right side.

    Computed as ``exact_influence_ic(S) / n``; exposed for tests that pin
    the RR-based estimator to its analytical value.
    """
    return exact_influence_ic(graph, seeds) / graph.n
