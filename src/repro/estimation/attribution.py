"""Per-seed attribution: which seeds carry the spread?

Marketing budgets get audited seed by seed.  Two standard decompositions:

* :func:`marginal_contributions` — leave-one-out: the spread lost when a
  single seed is dropped.  Fast, but overlapping seeds can all look
  dispensable at once.
* :func:`incremental_contributions` — prefix gains in a given order (e.g.
  greedy selection order): how much each seed added when it was chosen.
  Sums exactly to the full spread estimate.

Both use the forward simulator and shared cascades count, so numbers are
comparable within one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.estimation.montecarlo import estimate_spread
from repro.graphs.csr import CSRGraph
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class SeedContribution:
    """Attribution record for one seed."""

    seed: int
    contribution: float
    full_spread: float

    @property
    def share(self) -> float:
        """Contribution as a fraction of the full spread."""
        if self.full_spread <= 0:
            return 0.0
        return self.contribution / self.full_spread


def _validated_seeds(graph: CSRGraph, seeds: Sequence[int]) -> List[int]:
    seed_list = list(dict.fromkeys(int(s) for s in seeds))
    if not seed_list:
        raise ConfigurationError("need at least one seed to attribute")
    for s in seed_list:
        if not 0 <= s < graph.n:
            raise ConfigurationError(f"seed {s} out of range [0, {graph.n})")
    return seed_list


def marginal_contributions(
    graph: CSRGraph,
    seeds: Sequence[int],
    model: str = "ic",
    num_simulations: int = 500,
    seed: SeedLike = 0,
) -> List[SeedContribution]:
    """Leave-one-out spread loss per seed, sorted most-valuable first."""
    seed_list = _validated_seeds(graph, seeds)
    full = estimate_spread(
        graph, seed_list, model=model, num_simulations=num_simulations, seed=seed
    ).mean
    records = []
    for drop in seed_list:
        rest = [s for s in seed_list if s != drop]
        reduced = (
            estimate_spread(
                graph, rest, model=model,
                num_simulations=num_simulations, seed=seed,
            ).mean
            if rest
            else 0.0
        )
        records.append(
            SeedContribution(seed=drop, contribution=full - reduced, full_spread=full)
        )
    records.sort(key=lambda r: -r.contribution)
    return records


def incremental_contributions(
    graph: CSRGraph,
    seeds: Sequence[int],
    model: str = "ic",
    num_simulations: int = 500,
    seed: SeedLike = 0,
) -> List[SeedContribution]:
    """Prefix gains in the given seed order (selection-order attribution).

    ``sum(contribution) == spread(all seeds)`` by construction (telescoping
    over the same seeded estimator).
    """
    seed_list = _validated_seeds(graph, seeds)
    full = estimate_spread(
        graph, seed_list, model=model, num_simulations=num_simulations, seed=seed
    ).mean
    records = []
    previous = 0.0
    for i in range(1, len(seed_list) + 1):
        prefix = (
            estimate_spread(
                graph, seed_list[:i], model=model,
                num_simulations=num_simulations, seed=seed,
            ).mean
            if i < len(seed_list)
            else full
        )
        records.append(
            SeedContribution(
                seed=seed_list[i - 1],
                contribution=prefix - previous,
                full_spread=full,
            )
        )
        previous = prefix
    return records


def attribution_table(records: Sequence[SeedContribution]) -> List[Dict[str, object]]:
    """Dict-rows for :func:`repro.experiments.reporting.render_table`."""
    return [
        {
            "seed": r.seed,
            "contribution": round(r.contribution, 2),
            "share": round(r.share, 4),
        }
        for r in records
    ]
