"""Influence-spread estimation: forward Monte-Carlo and RR-based."""

from repro.estimation.attribution import (
    SeedContribution,
    attribution_table,
    incremental_contributions,
    marginal_contributions,
)
from repro.estimation.montecarlo import (
    SpreadEstimate,
    estimate_spread,
    simulate_ic,
    simulate_lt,
)
from repro.estimation.rr_estimator import rr_influence_estimate
from repro.estimation.sequential import (
    SequentialEstimate,
    estimate_mean_sequential,
    estimate_spread_sequential,
)
from repro.estimation.snapshots import (
    estimate_spread_snapshots,
    exact_influence_ic,
    exact_rr_hit_probability,
    snapshot_spread,
)
from repro.estimation.structural import influence_envelope, reachable_set

__all__ = [
    "SeedContribution",
    "SequentialEstimate",
    "SpreadEstimate",
    "attribution_table",
    "estimate_mean_sequential",
    "estimate_spread",
    "estimate_spread_sequential",
    "estimate_spread_snapshots",
    "exact_influence_ic",
    "exact_rr_hit_probability",
    "incremental_contributions",
    "influence_envelope",
    "marginal_contributions",
    "reachable_set",
    "rr_influence_estimate",
    "simulate_ic",
    "simulate_lt",
    "snapshot_spread",
]
