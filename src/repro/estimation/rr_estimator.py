"""Influence estimation through freshly drawn RR sets (Lemma 1)."""

from __future__ import annotations

from typing import Iterable, Type

from repro.graphs.csr import CSRGraph
from repro.rrsets.base import RRGenerator
from repro.rrsets.collection import RRCollection
from repro.rrsets.subsim import SubsimICGenerator
from repro.utils.rng import SeedLike, as_generator


def rr_influence_estimate(
    graph: CSRGraph,
    seeds: Iterable[int],
    num_rr: int = 10_000,
    generator_cls: Type[RRGenerator] = SubsimICGenerator,
    seed: SeedLike = None,
) -> float:
    """Estimate ``I(S)`` as ``n * Lambda_R(S) / |R|`` over fresh RR sets.

    Since ``I(S) = n * Pr[S hits a random RR set]`` (Lemma 1), the fraction
    of ``num_rr`` independent RR sets hit by ``S`` is an unbiased influence
    estimator — usually far cheaper than forward simulation for small
    influences, and the standard way the RR-based algorithms self-evaluate.
    """
    if num_rr < 1:
        raise ValueError("num_rr must be >= 1")
    rng = as_generator(seed)
    collection = RRCollection(graph.n)
    collection.extend(num_rr, generator_cls(graph), rng)
    return collection.estimate_influence(seeds)
