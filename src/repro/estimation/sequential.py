"""Sequential (optimal) Monte-Carlo estimation — Dagum et al. [16].

The paper's sample-size initialisation (``theta_0 = 3 ln(1/delta)``) comes
from the *optimal Monte-Carlo estimation* result: to estimate the mean
``mu`` of a [0, 1] variable within relative error ``eps`` with confidence
``1 - delta``, roughly ``3 ln(2/delta) / (eps^2 mu)`` samples are necessary
and sufficient — but ``mu`` is unknown up front.  The stopping-rule
algorithm solves the chicken-and-egg: keep sampling until the *running
sum* crosses a threshold that only depends on ``eps`` and ``delta``.

:func:`estimate_mean_sequential` implements that stopping rule for
arbitrary [0, 1] variables, and :func:`estimate_spread_sequential` applies
it to influence estimation (cascade size / n), replacing a blind
``num_simulations`` with an explicit accuracy contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List

import numpy as np

from repro.estimation.montecarlo import simulate_ic, simulate_lt
from repro.graphs.csr import CSRGraph
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class SequentialEstimate:
    """Outcome of a stopping-rule estimation run."""

    mean: float
    num_samples: int
    eps: float
    delta: float
    converged: bool  # False when max_samples cut the run short


def estimate_mean_sequential(
    sample: Callable[[np.random.Generator], float],
    eps: float,
    delta: float,
    rng: np.random.Generator,
    max_samples: int = 10_000_000,
) -> SequentialEstimate:
    """Stopping-rule estimation of ``E[sample()]`` for a [0, 1] variable.

    Draws until the running sum reaches ``upsilon = 1 + (1 + eps) * 4
    (e - 2) ln(2/delta) / eps^2``, then returns ``upsilon / N``.  With
    probability at least ``1 - delta`` the result lies within ``(1 +- eps)``
    of the true mean (Dagum–Karp–Luby–Ross, Theorem 1 simplified).

    ``max_samples`` guards against a (near-)zero mean, where the faithful
    rule never stops; hitting it is reported via ``converged=False``.
    """
    if eps <= 0 or eps >= 1:
        raise ConfigurationError(f"eps must lie in (0, 1), got {eps}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must lie in (0, 1), got {delta}")
    if max_samples < 1:
        raise ConfigurationError("max_samples must be positive")

    upsilon = 1.0 + (1.0 + eps) * 4.0 * (math.e - 2.0) * math.log(
        2.0 / delta
    ) / (eps * eps)
    total = 0.0
    count = 0
    while total < upsilon:
        if count >= max_samples:
            return SequentialEstimate(
                mean=total / count if count else 0.0,
                num_samples=count,
                eps=eps,
                delta=delta,
                converged=False,
            )
        value = float(sample(rng))
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(
                f"sample() must return values in [0, 1], got {value}"
            )
        total += value
        count += 1
    return SequentialEstimate(
        mean=upsilon / count,
        num_samples=count,
        eps=eps,
        delta=delta,
        converged=True,
    )


def estimate_spread_sequential(
    graph: CSRGraph,
    seeds: Iterable[int],
    eps: float = 0.1,
    delta: float = 0.05,
    model: str = "ic",
    seed: SeedLike = None,
    max_samples: int = 200_000,
) -> SequentialEstimate:
    """Influence estimate with an explicit ``(eps, delta)`` contract.

    Simulates cascades until the stopping rule fires on the normalised
    spread ``I / n``; the returned ``mean`` is scaled back to node units.
    High-influence seed sets converge in a handful of cascades; near-zero
    spreads fall back to ``max_samples`` (flagged by ``converged``).
    """
    seed_list: List[int] = list(dict.fromkeys(int(s) for s in seeds))
    for s in seed_list:
        if not 0 <= s < graph.n:
            raise ConfigurationError(f"seed {s} out of range [0, {graph.n})")
    if not seed_list:
        raise ConfigurationError("cannot estimate the spread of no seeds")
    if model not in ("ic", "lt"):
        raise ConfigurationError(f"model must be 'ic' or 'lt', got {model!r}")
    simulate = simulate_ic if model == "ic" else simulate_lt
    rng = as_generator(seed)

    result = estimate_mean_sequential(
        lambda r: simulate(graph, seed_list, r) / graph.n,
        eps,
        delta,
        rng,
        max_samples=max_samples,
    )
    return SequentialEstimate(
        mean=result.mean * graph.n,
        num_samples=result.num_samples,
        eps=eps,
        delta=delta,
        converged=result.converged,
    )
