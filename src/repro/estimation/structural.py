"""Structural (probability-free) influence bounds.

Cheap sanity envelopes around any spread estimate:

* upper: ``I(S) <= |forward-reachable(S)|`` — the all-edges-live ceiling;
* lower: ``I(S) >= |S|`` — seeds activate themselves.

The test suite wraps every estimator in these; experiment code uses the
ceiling to detect mis-calibrated workloads (a target spread above the
ceiling is unreachable no matter the probabilities).
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from repro.graphs.csr import CSRGraph
from repro.graphs.traversal import forward_reachable
from repro.utils.exceptions import ConfigurationError


def reachable_set(graph: CSRGraph, seeds: Iterable[int]) -> Set[int]:
    """Union of forward-reachable sets — everything any cascade could touch."""
    seed_list = list(dict.fromkeys(int(s) for s in seeds))
    if not seed_list:
        return set()
    for s in seed_list:
        if not 0 <= s < graph.n:
            raise ConfigurationError(f"seed {s} out of range [0, {graph.n})")
    out: Set[int] = set()
    for s in seed_list:
        if s not in out:  # already-absorbed seeds add nothing new
            out |= forward_reachable(graph, s)
    return out


def influence_envelope(
    graph: CSRGraph, seeds: Iterable[int]
) -> Tuple[float, float]:
    """``(lower, upper)`` bracketing the expected influence of ``seeds``.

    ``lower = |distinct seeds|`` (self-activation), ``upper`` the reachable
    count.  Any correct estimator's value lies inside, which is how the
    test suite cross-checks all four of them at once.
    """
    seed_list = list(dict.fromkeys(int(s) for s in seeds))
    upper = float(len(reachable_set(graph, seed_list)))
    return float(len(seed_list)), upper
