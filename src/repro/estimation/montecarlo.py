"""Forward Monte-Carlo cascade simulation (ground truth for influence).

These simulators realise the discrete-time processes of paper Section 2.1
directly on the forward adjacency.  They are the arbiter for everything else:
RR-based estimates, seed-set quality across algorithms (Figure 5), and the
distributional unit tests all compare against averages of these cascades.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class SpreadEstimate:
    """Monte-Carlo influence estimate with sampling uncertainty."""

    mean: float
    std: float
    num_simulations: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.num_simulations <= 1:
            return float("inf")
        return self.std / math.sqrt(self.num_simulations)

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation CI around the mean."""
        half = z * self.stderr
        return (self.mean - half, self.mean + half)


def _as_seed_list(graph: CSRGraph, seeds: Iterable[int]) -> List[int]:
    seed_list = list(dict.fromkeys(int(s) for s in seeds))
    for s in seed_list:
        if not 0 <= s < graph.n:
            raise ValueError(f"seed {s} out of range [0, {graph.n})")
    return seed_list


def simulate_ic(
    graph: CSRGraph, seeds: Sequence[int], rng: np.random.Generator
) -> int:
    """One IC cascade from ``seeds``; returns the number of activated nodes.

    Each newly activated node gets a single chance to activate each inactive
    out-neighbor with the edge's probability.
    """
    indptr = graph.out_indptr
    indices = graph.out_indices
    probs = graph.out_probs
    active = np.zeros(graph.n, dtype=bool)
    frontier: List[int] = []
    for s in seeds:
        if not active[s]:
            active[s] = True
            frontier.append(s)
    count = len(frontier)
    while frontier:
        next_frontier: List[int] = []
        for u in frontier:
            lo, hi = indptr[u], indptr[u + 1]
            if lo == hi:
                continue
            coins = rng.random(hi - lo)
            hits = np.flatnonzero(coins < probs[lo:hi])
            for j in hits:
                w = indices[lo + j]
                if not active[w]:
                    active[w] = True
                    next_frontier.append(int(w))
        count += len(next_frontier)
        frontier = next_frontier
    return count


def simulate_lt(
    graph: CSRGraph, seeds: Sequence[int], rng: np.random.Generator
) -> int:
    """One LT cascade from ``seeds``; returns the number of activated nodes.

    Each node draws a threshold uniformly from [0, 1] (lazily, on the first
    time incoming weight reaches it) and activates once the total weight of
    its active in-neighbors meets the threshold.
    """
    indptr = graph.out_indptr
    indices = graph.out_indices
    probs = graph.out_probs
    active = np.zeros(graph.n, dtype=bool)
    accumulated = np.zeros(graph.n, dtype=np.float64)
    thresholds = np.full(graph.n, -1.0)  # -1 marks "not drawn yet"

    frontier: List[int] = []
    for s in seeds:
        if not active[s]:
            active[s] = True
            frontier.append(s)
    count = len(frontier)
    while frontier:
        next_frontier: List[int] = []
        for u in frontier:
            lo, hi = indptr[u], indptr[u + 1]
            for j in range(lo, hi):
                w = indices[j]
                if active[w]:
                    continue
                if thresholds[w] < 0.0:
                    thresholds[w] = rng.random()
                accumulated[w] += probs[j]
                if accumulated[w] >= thresholds[w]:
                    active[w] = True
                    next_frontier.append(int(w))
        count += len(next_frontier)
        frontier = next_frontier
    return count


_SIMULATORS = {"ic": simulate_ic, "lt": simulate_lt}


def estimate_spread(
    graph: CSRGraph,
    seeds: Iterable[int],
    model: str = "ic",
    num_simulations: int = 1000,
    seed: SeedLike = None,
) -> SpreadEstimate:
    """Average ``num_simulations`` cascades into a spread estimate.

    ``model`` selects "ic" or "lt"; duplicated seeds are collapsed.
    """
    if model not in _SIMULATORS:
        raise ValueError(f"model must be one of {sorted(_SIMULATORS)}, got {model!r}")
    if num_simulations < 1:
        raise ValueError("num_simulations must be >= 1")
    seed_list = _as_seed_list(graph, seeds)
    if not seed_list:
        return SpreadEstimate(0.0, 0.0, num_simulations)
    rng = as_generator(seed)
    simulate = _SIMULATORS[model]
    results = np.fromiter(
        (simulate(graph, seed_list, rng) for _ in range(num_simulations)),
        dtype=np.float64,
        count=num_simulations,
    )
    return SpreadEstimate(
        mean=float(results.mean()),
        std=float(results.std(ddof=1)) if num_simulations > 1 else 0.0,
        num_simulations=num_simulations,
    )
