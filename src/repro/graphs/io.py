"""Graph persistence: plain edge lists and compressed NumPy archives.

The text format is one edge per line — ``src dst [prob]`` — with ``#``
comments, matching SNAP/KONECT-style downloads so real datasets can be
plugged in when available.

Error contract: every loader failure — missing file, permission problem,
truncated archive, malformed line — surfaces as
:class:`~repro.utils.exceptions.GraphFormatError` with the underlying
exception chained as ``__cause__``, so callers catch one type and can still
distinguish transient I/O faults (``isinstance(exc.__cause__, OSError)``)
from permanent format errors.  The ``*_with_retry`` variants exploit
exactly that distinction: transient failures are retried with bounded,
jittered exponential backoff under a max-total-wait cap (sleep and jitter
RNG are injectable for tests); format errors are never retried, and the
error that finally surfaces records its ``attempts`` / ``total_wait``.
"""

from __future__ import annotations

import os
import time
import zipfile
from typing import Callable, Optional, Union

import numpy as np

from repro.graphs.csr import CSRGraph, build_graph
from repro.utils.exceptions import GraphFormatError
from repro.utils.rng import SeedLike, as_generator

PathLike = Union[str, "os.PathLike[str]"]


def load_edge_list(
    path: PathLike,
    default_prob: float = 1.0,
    n: Optional[int] = None,
    weight_model: str = "file",
) -> CSRGraph:
    """Parse a whitespace-separated edge-list file into a :class:`CSRGraph`.

    Lines are ``src dst`` or ``src dst prob``; blank lines and lines starting
    with ``#`` are skipped.  Node ids must be non-negative integers; ``n``
    defaults to ``max(id) + 1``.  Raises :class:`GraphFormatError` (cause
    chained) on unreadable files and malformed content alike.
    """
    src_list, dst_list, prob_list = [], [], []
    try:
        handle = open(path)
    except OSError as exc:
        raise GraphFormatError(f"{path}: cannot open edge list: {exc}") from exc
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst [prob]', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
                p = float(parts[2]) if len(parts) == 3 else default_prob
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: {exc}") from exc
            src_list.append(u)
            dst_list.append(v)
            prob_list.append(p)
    if not src_list:
        raise GraphFormatError(f"{path}: no edges found")
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    probs = np.asarray(prob_list, dtype=np.float64)
    if n is None:
        n = int(max(src.max(), dst.max())) + 1
    return build_graph(n, src, dst, probs, weight_model=weight_model)


def save_edge_list(graph: CSRGraph, path: PathLike, write_probs: bool = True) -> None:
    """Write the graph as a text edge list (optionally omitting probabilities)."""
    src, dst, probs = graph.edges()
    with open(path, "w") as handle:
        handle.write(f"# n={graph.n} m={graph.m} weight_model={graph.weight_model}\n")
        if write_probs:
            for u, v, p in zip(src, dst, probs):
                handle.write(f"{u} {v} {p:.17g}\n")
        else:
            for u, v in zip(src, dst):
                handle.write(f"{u} {v}\n")


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Persist the graph losslessly as a compressed ``.npz`` archive."""
    np.savez_compressed(
        path,
        n=np.int64(graph.n),
        out_indptr=graph.out_indptr,
        out_indices=graph.out_indices,
        out_probs=graph.out_probs,
        in_indptr=graph.in_indptr,
        in_indices=graph.in_indices,
        in_probs=graph.in_probs,
        weight_model=np.str_(graph.weight_model),
    )


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`.

    Truncated or corrupt archives, missing arrays, and unreadable files all
    raise :class:`GraphFormatError` with the original error chained.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            return CSRGraph(
                int(data["n"]),
                data["out_indptr"],
                data["out_indices"],
                data["out_probs"],
                data["in_indptr"],
                data["in_indices"],
                data["in_probs"],
                weight_model=str(data["weight_model"]),
            )
    except OSError as exc:
        raise GraphFormatError(f"{path}: cannot read archive: {exc}") from exc
    except (ValueError, KeyError, EOFError, zipfile.BadZipFile) as exc:
        # np.load raises BadZipFile on a broken archive, ValueError on
        # corrupt zip members, KeyError on missing arrays, EOFError on
        # short reads — all format problems.
        raise GraphFormatError(
            f"{path}: invalid graph archive: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# sidecar cache
# ----------------------------------------------------------------------

def sidecar_path(path: PathLike) -> str:
    """The binary sidecar a text edge list is cached under."""
    return f"{os.fspath(path)}.graph.npz"


def load_graph_auto(
    path: PathLike,
    retries: int = 0,
    use_sidecar: bool = True,
) -> CSRGraph:
    """Load a graph file, preferring a fresh binary sidecar for text input.

    ``.npz`` paths load directly.  For a text edge list the loader first
    looks for ``<path>.graph.npz``: a sidecar at least as new as the text
    file (by mtime) is trusted and loaded — an order of magnitude faster
    than re-parsing at n >= 10^6 — while a stale or unreadable sidecar is
    ignored and the text re-parsed.  After a successful parse the sidecar
    is (re)written atomically via a temp file + ``os.replace``; a failure
    to write it (read-only directory, quota) is silently ignored — the
    cache is an optimization, never a correctness requirement.

    ``retries`` forwards to the ``*_with_retry`` loaders (0 = no retry).
    """
    text_path = os.fspath(path)
    if text_path.endswith(".npz"):
        if retries:
            return load_npz_with_retry(text_path, retries=retries)
        return load_npz(text_path)
    cache = sidecar_path(text_path)
    if use_sidecar:
        try:
            if os.path.getmtime(cache) >= os.path.getmtime(text_path):
                return load_npz(cache)
        except (OSError, GraphFormatError):
            pass  # missing, unreadable, or corrupt sidecar: re-parse
    if retries:
        graph = load_edge_list_with_retry(text_path, retries=retries)
    else:
        graph = load_edge_list(text_path)
    if use_sidecar:
        # np.savez appends ".npz" to names lacking it — keep the suffix so
        # the temp file lands where we expect to replace from.
        tmp = f"{cache}.{os.getpid()}.tmp.npz"
        try:
            save_npz(graph, tmp)
            os.replace(tmp, cache)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
    return graph


# ----------------------------------------------------------------------
# retry wrappers
# ----------------------------------------------------------------------

def _retry_load(
    loader: Callable[..., CSRGraph],
    path: PathLike,
    retries: int,
    backoff: float,
    jitter: float,
    sleep: Callable[[float], None],
    seed: SeedLike,
    kwargs: dict,
    max_total_wait: Optional[float] = None,
) -> CSRGraph:
    if retries < 0:
        raise GraphFormatError(f"retries must be >= 0, got {retries}")
    if max_total_wait is not None and max_total_wait < 0:
        raise GraphFormatError(
            f"max_total_wait must be >= 0, got {max_total_wait}"
        )
    rng = as_generator(seed)
    attempt = 0
    waited = 0.0
    while True:
        attempt += 1
        try:
            return loader(path, **kwargs)
        except GraphFormatError as exc:
            # Surface how hard the loader tried, so the caller's error
            # report can distinguish "failed instantly" from "retried N
            # times over S seconds and gave up".
            exc.attempts = attempt
            exc.total_wait = waited
            transient = isinstance(exc.__cause__, OSError)
            if not transient or attempt > retries:
                raise
            delay = backoff * (2.0 ** (attempt - 1))
            if jitter > 0:
                delay *= 1.0 + jitter * float(rng.random())
            if max_total_wait is not None and waited + delay > max_total_wait:
                # The cap bounds cumulative sleep, not attempts: stop
                # retrying once the next backoff would blow it.
                raise
            waited += delay
            sleep(delay)


def load_edge_list_with_retry(
    path: PathLike,
    retries: int = 3,
    backoff: float = 0.1,
    jitter: float = 0.5,
    sleep: Callable[[float], None] = time.sleep,
    seed: SeedLike = None,
    max_total_wait: Optional[float] = 30.0,
    **kwargs,
) -> CSRGraph:
    """:func:`load_edge_list` with bounded retry on *transient* failures.

    Only errors whose chained cause is :class:`OSError` (vanished file,
    permission flap, network filesystem hiccup) are retried — up to
    ``retries`` extra attempts with exponential backoff ``backoff * 2^i``
    scaled by a seeded jitter factor in ``[1, 1 + jitter]``, and never
    sleeping more than ``max_total_wait`` seconds in total (``None``
    removes the cap).  Malformed content fails immediately.  ``sleep`` is
    injectable so tests run instantly.  A raised
    :class:`GraphFormatError` carries ``attempts`` and ``total_wait``
    attributes recording how hard the loader tried.
    """
    return _retry_load(
        load_edge_list, path, retries, backoff, jitter, sleep, seed, kwargs,
        max_total_wait=max_total_wait,
    )


def load_npz_with_retry(
    path: PathLike,
    retries: int = 3,
    backoff: float = 0.1,
    jitter: float = 0.5,
    sleep: Callable[[float], None] = time.sleep,
    seed: SeedLike = None,
    max_total_wait: Optional[float] = 30.0,
    **kwargs,
) -> CSRGraph:
    """:func:`load_npz` with the same retry policy as
    :func:`load_edge_list_with_retry`."""
    return _retry_load(
        load_npz, path, retries, backoff, jitter, sleep, seed, kwargs,
        max_total_wait=max_total_wait,
    )
