"""Graph persistence: plain edge lists and compressed NumPy archives.

The text format is one edge per line — ``src dst [prob]`` — with ``#``
comments, matching SNAP/KONECT-style downloads so real datasets can be
plugged in when available.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.graphs.csr import CSRGraph, build_graph
from repro.utils.exceptions import GraphFormatError

PathLike = Union[str, "os.PathLike[str]"]


def load_edge_list(
    path: PathLike,
    default_prob: float = 1.0,
    n: Optional[int] = None,
    weight_model: str = "file",
) -> CSRGraph:
    """Parse a whitespace-separated edge-list file into a :class:`CSRGraph`.

    Lines are ``src dst`` or ``src dst prob``; blank lines and lines starting
    with ``#`` are skipped.  Node ids must be non-negative integers; ``n``
    defaults to ``max(id) + 1``.
    """
    src_list, dst_list, prob_list = [], [], []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst [prob]', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
                p = float(parts[2]) if len(parts) == 3 else default_prob
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: {exc}") from exc
            src_list.append(u)
            dst_list.append(v)
            prob_list.append(p)
    if not src_list:
        raise GraphFormatError(f"{path}: no edges found")
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    probs = np.asarray(prob_list, dtype=np.float64)
    if n is None:
        n = int(max(src.max(), dst.max())) + 1
    return build_graph(n, src, dst, probs, weight_model=weight_model)


def save_edge_list(graph: CSRGraph, path: PathLike, write_probs: bool = True) -> None:
    """Write the graph as a text edge list (optionally omitting probabilities)."""
    src, dst, probs = graph.edges()
    with open(path, "w") as handle:
        handle.write(f"# n={graph.n} m={graph.m} weight_model={graph.weight_model}\n")
        if write_probs:
            for u, v, p in zip(src, dst, probs):
                handle.write(f"{u} {v} {p:.17g}\n")
        else:
            for u, v in zip(src, dst):
                handle.write(f"{u} {v}\n")


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Persist the graph losslessly as a compressed ``.npz`` archive."""
    np.savez_compressed(
        path,
        n=np.int64(graph.n),
        out_indptr=graph.out_indptr,
        out_indices=graph.out_indices,
        out_probs=graph.out_probs,
        in_indptr=graph.in_indptr,
        in_indices=graph.in_indices,
        in_probs=graph.in_probs,
        weight_model=np.str_(graph.weight_model),
    )


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        return CSRGraph(
            int(data["n"]),
            data["out_indptr"],
            data["out_indices"],
            data["out_probs"],
            data["in_indptr"],
            data["in_indices"],
            data["in_probs"],
            weight_model=str(data["weight_model"]),
        )
