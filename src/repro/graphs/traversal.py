"""Deterministic graph traversals: reachability and strongly connected components.

These are the exact-structure counterparts of the probabilistic RR-set
machinery: a reverse-reachable set under "all edges live" (every probability
1) is precisely :func:`reverse_reachable`, which the test suite uses as
ground truth, and SCC structure explains the influence ceilings the
calibration module runs into (a DAG caps spread; a large SCC enables the
paper's high-influence regime).
"""

from __future__ import annotations

from collections import deque
from typing import List, Set

import numpy as np

from repro.graphs.csr import CSRGraph


def _bfs(indptr: np.ndarray, indices: np.ndarray, source: int, n: int) -> Set[int]:
    seen = np.zeros(n, dtype=bool)
    seen[source] = True
    queue = deque([source])
    out = {source}
    while queue:
        u = queue.popleft()
        for j in range(indptr[u], indptr[u + 1]):
            w = int(indices[j])
            if not seen[w]:
                seen[w] = True
                out.add(w)
                queue.append(w)
    return out


def forward_reachable(graph: CSRGraph, source: int) -> Set[int]:
    """Nodes reachable from ``source`` following edge direction."""
    if not 0 <= source < graph.n:
        raise ValueError(f"source {source} out of range [0, {graph.n})")
    return _bfs(graph.out_indptr, graph.out_indices, source, graph.n)


def reverse_reachable(graph: CSRGraph, target: int) -> Set[int]:
    """Nodes that can reach ``target`` — the deterministic RR set.

    Equals the RR set of ``target`` when every edge probability is 1, which
    is how the test suite cross-checks the stochastic generators.
    """
    if not 0 <= target < graph.n:
        raise ValueError(f"target {target} out of range [0, {graph.n})")
    return _bfs(graph.in_indptr, graph.in_indices, target, graph.n)


def strongly_connected_components(graph: CSRGraph) -> List[List[int]]:
    """Tarjan's SCC algorithm, iterative (no recursion-depth limits).

    Returns components as lists of node ids, in reverse topological order
    of the condensation (standard Tarjan emission order).
    """
    n = graph.n
    indptr = graph.out_indptr
    indices = graph.out_indices

    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in range(n):
        if index[root] != -1:
            continue
        # Explicit DFS stack of (node, next-edge-pointer).
        work = [(root, indptr[root])]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            u, ptr = work[-1]
            if ptr < indptr[u + 1]:
                work[-1] = (u, ptr + 1)
                w = int(indices[ptr])
                if index[w] == -1:
                    index[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, indptr[w]))
                elif on_stack[w]:
                    lowlink[u] = min(lowlink[u], index[w])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[u])
                if lowlink[u] == index[u]:
                    component = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        component.append(w)
                        if w == u:
                            break
                    components.append(component)
    return components


def largest_scc_size(graph: CSRGraph) -> int:
    """Size of the largest strongly connected component."""
    components = strongly_connected_components(graph)
    return max((len(c) for c in components), default=0)


def is_dag(graph: CSRGraph) -> bool:
    """True when the graph has no directed cycles (every SCC is a singleton)."""
    return largest_scc_size(graph) <= 1
