"""Descriptive statistics over :class:`~repro.graphs.csr.CSRGraph`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graphs.csr import CSRGraph


@dataclass(frozen=True)
class GraphSummary:
    """The dataset-summary row of the paper's Table 2, plus weight info."""

    n: int
    m: int
    avg_degree: float
    max_in_degree: int
    max_out_degree: int
    avg_in_prob_sum: float
    weight_model: str

    def as_row(self) -> Dict[str, object]:
        """Dictionary form for the table-rendering harness."""
        return {
            "n": self.n,
            "m": self.m,
            "avg_degree": round(self.avg_degree, 2),
            "max_in_degree": self.max_in_degree,
            "max_out_degree": self.max_out_degree,
            "avg_in_prob_sum": round(self.avg_in_prob_sum, 4),
            "weight_model": self.weight_model,
        }


def graph_summary(graph: CSRGraph) -> GraphSummary:
    """Compute the summary statistics used in dataset tables."""
    in_deg = graph.in_degree()
    out_deg = graph.out_degree()
    return GraphSummary(
        n=graph.n,
        m=graph.m,
        avg_degree=graph.average_degree(),
        max_in_degree=int(in_deg.max()) if graph.n else 0,
        max_out_degree=int(out_deg.max()) if graph.n else 0,
        avg_in_prob_sum=float(graph.in_prob_sums.mean()) if graph.n else 0.0,
        weight_model=graph.weight_model,
    )


def degree_histogram(graph: CSRGraph, direction: str = "in") -> np.ndarray:
    """Histogram ``h`` where ``h[d]`` counts nodes with degree ``d``.

    ``direction`` selects "in" or "out" degrees.
    """
    if direction not in ("in", "out"):
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    deg = graph.in_degree() if direction == "in" else graph.out_degree()
    return np.bincount(deg)


def power_law_exponent(
    graph: CSRGraph, direction: str = "in", d_min: int = 2
) -> float:
    """Hill (maximum-likelihood) estimate of the degree-tail exponent.

    For degrees ``d >= d_min`` distributed as ``P(d) ~ d^-alpha``, the MLE
    is ``alpha = 1 + n' / sum(ln(d / (d_min - 0.5)))`` (Clauset et al.'s
    discrete approximation).  Social networks typically land in [2, 3];
    Erdős–Rényi graphs produce much larger values (no heavy tail).  Returns
    ``nan`` when fewer than two nodes reach ``d_min``.
    """
    if direction not in ("in", "out"):
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    if d_min < 1:
        raise ValueError(f"d_min must be >= 1, got {d_min}")
    deg = graph.in_degree() if direction == "in" else graph.out_degree()
    tail = deg[deg >= d_min].astype(np.float64)
    if len(tail) < 2:
        return float("nan")
    return 1.0 + len(tail) / float(np.log(tail / (d_min - 0.5)).sum())


def reciprocity(graph: CSRGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists.

    1.0 for undirected-style graphs, 0.0 for pure DAGs; the
    ``preferential_attachment(reciprocal=...)`` knob targets this measure.
    """
    if graph.m == 0:
        return 0.0
    src, dst, _ = graph.edges()
    packed = set((int(u) * graph.n + int(v)) for u, v in zip(src, dst))
    mutual = sum(
        1 for u, v in zip(src, dst) if (int(v) * graph.n + int(u)) in packed
    )
    return mutual / graph.m


def effective_influence_ceiling(
    graph: CSRGraph, num_samples: int = 100, seed: int = 0
) -> float:
    """Average reachable-set size when every edge fires (all probs 1).

    The hard ceiling of any cascade's expected spread from one seed, and
    the quantity calibration targets cannot exceed.  Estimated by BFS from
    ``num_samples`` random roots.
    """
    from repro.graphs.traversal import forward_reachable
    from repro.utils.rng import as_generator

    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    rng = as_generator(seed)
    roots = rng.integers(0, graph.n, size=num_samples)
    return float(
        np.mean([len(forward_reachable(graph, int(r))) for r in roots])
    )
