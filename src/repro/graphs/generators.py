"""Synthetic graph generators.

The paper benchmarks on Pokec, Orkut, Twitter and Friendster — up to 1.8B
edges, far beyond what an interpreted implementation can traverse.  These
generators produce scaled-down graphs with the structural properties the
paper's effects depend on: heavy-tailed in-degree (preferential attachment),
controlled average degree (Erdős–Rényi), clustering (Watts–Strogatz), and
community structure (stochastic block model).

All generators return unweighted edge arrays assembled into a
:class:`~repro.graphs.csr.CSRGraph` with a placeholder uniform weight of 1.0;
apply a scheme from :mod:`repro.graphs.weights` to obtain a cascade model.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graphs.csr import CSRGraph, build_graph
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


def _dedupe(n: int, src: np.ndarray, dst: np.ndarray):
    """Drop self-loops and duplicate directed edges, keeping first occurrence."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    packed = src * np.int64(n) + dst
    _, first = np.unique(packed, return_index=True)
    first.sort()
    return src[first], dst[first]


def _finish(n: int, src: np.ndarray, dst: np.ndarray, name: str) -> CSRGraph:
    src, dst = _dedupe(n, src, dst)
    probs = np.ones(len(src), dtype=np.float64)
    return build_graph(n, src, dst, probs, weight_model=f"unweighted:{name}")


def erdos_renyi(
    n: int, avg_degree: float, seed: SeedLike = None, directed: bool = True
) -> CSRGraph:
    """G(n, m) digraph with ``m ~= n * avg_degree`` uniformly random edges.

    For ``directed=False`` each sampled pair is materialised in both
    directions (matching how the paper treats Orkut/Friendster).
    """
    if n < 2:
        raise ConfigurationError("erdos_renyi needs n >= 2")
    if avg_degree <= 0:
        raise ConfigurationError("avg_degree must be positive")
    rng = as_generator(seed)
    target = int(round(n * avg_degree))
    # Oversample to survive dedupe, then trim.
    draw = int(target * 1.2) + 16
    src = rng.integers(0, n, size=draw, dtype=np.int64)
    dst = rng.integers(0, n, size=draw, dtype=np.int64)
    src, dst = _dedupe(n, src, dst)
    src, dst = src[:target], dst[:target]
    if not directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return _finish(n, src, dst, f"er(avg={avg_degree})")


def preferential_attachment(
    n: int,
    edges_per_node: int = 4,
    seed: SeedLike = None,
    directed: bool = True,
    reciprocal: float = 0.0,
) -> CSRGraph:
    """Barabási–Albert style growth producing heavy-tailed in-degree.

    Each arriving node links to ``edges_per_node`` targets chosen
    proportionally to current in-degree + 1 (smoothing so early nodes are
    reachable).  With ``directed=True`` edges point from the new node to the
    chosen targets, yielding a skewed *in*-degree distribution like social
    follow graphs; ``reciprocal`` is the probability that a directed link is
    also mirrored (pure growth yields a DAG — real follow graphs have
    back-links and cycles).  ``directed=False`` mirrors every edge.
    """
    if n <= edges_per_node:
        raise ConfigurationError("need n > edges_per_node")
    if edges_per_node < 1:
        raise ConfigurationError("edges_per_node must be >= 1")
    if not 0.0 <= reciprocal <= 1.0:
        raise ConfigurationError("reciprocal must lie in [0, 1]")
    rng = as_generator(seed)
    # Repeated-nodes trick: maintain a pool where each node appears
    # (in-degree + 1) times; sampling uniformly from the pool is sampling
    # proportionally to in-degree + 1.
    pool = list(range(edges_per_node))  # seed clique targets
    src_list = []
    dst_list = []
    for v in range(edges_per_node, n):
        chosen = set()
        while len(chosen) < edges_per_node:
            idx = int(rng.integers(0, len(pool)))
            chosen.add(pool[idx])
        for t in chosen:
            src_list.append(v)
            dst_list.append(t)
            pool.append(t)
        pool.append(v)
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    if not directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    elif reciprocal > 0.0:
        mirror = rng.random(len(src)) < reciprocal
        src, dst = (
            np.concatenate([src, dst[mirror]]),
            np.concatenate([dst, src[mirror]]),
        )
    return _finish(n, src, dst, f"pa(k={edges_per_node})")


def watts_strogatz(
    n: int, k: int = 4, beta: float = 0.1, seed: SeedLike = None
) -> CSRGraph:
    """Directed small-world ring: each node points to its ``k`` clockwise
    neighbors, each edge rewired to a random target with probability ``beta``.
    """
    if k < 1 or k >= n:
        raise ConfigurationError("need 1 <= k < n")
    if not 0.0 <= beta <= 1.0:
        raise ConfigurationError("beta must lie in [0, 1]")
    rng = as_generator(seed)
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    offsets = np.tile(np.arange(1, k + 1, dtype=np.int64), n)
    dst = (src + offsets) % n
    rewire = rng.random(len(src)) < beta
    dst[rewire] = rng.integers(0, n, size=int(rewire.sum()), dtype=np.int64)
    return _finish(n, src, dst, f"ws(k={k},beta={beta})")


def stochastic_block_model(
    sizes: Sequence[int],
    p_within: float,
    p_between: float,
    seed: SeedLike = None,
) -> CSRGraph:
    """Directed SBM with equal within-community and between-community rates.

    Edge counts are sampled binomially per block pair, then endpoints drawn
    uniformly inside the blocks — accurate for the sparse regimes used here.
    """
    if min(sizes) < 1:
        raise ConfigurationError("all community sizes must be >= 1")
    for p in (p_within, p_between):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError("probabilities must lie in [0, 1]")
    rng = as_generator(seed)
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    n = int(bounds[-1])
    src_parts = []
    dst_parts = []
    for a in range(len(sizes)):
        for b in range(len(sizes)):
            rate = p_within if a == b else p_between
            pairs = sizes[a] * sizes[b]
            count = rng.binomial(pairs, rate)
            if count == 0:
                continue
            src_parts.append(
                rng.integers(bounds[a], bounds[a + 1], size=count, dtype=np.int64)
            )
            dst_parts.append(
                rng.integers(bounds[b], bounds[b + 1], size=count, dtype=np.int64)
            )
    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
    else:
        src = np.zeros(0, dtype=np.int64)
        dst = np.zeros(0, dtype=np.int64)
    return _finish(n, src, dst, f"sbm({len(sizes)} blocks)")


# ----------------------------------------------------------------------
# Small deterministic graphs (unit-test fixtures with known influence).
# ----------------------------------------------------------------------

def star_graph(n: int, center_out: bool = True) -> CSRGraph:
    """Star on ``n`` nodes with node 0 at the center.

    ``center_out=True`` gives edges 0 -> i (node 0 influences everyone);
    ``False`` gives i -> 0.
    """
    if n < 2:
        raise ConfigurationError("star_graph needs n >= 2")
    leaves = np.arange(1, n, dtype=np.int64)
    zeros = np.zeros(n - 1, dtype=np.int64)
    src, dst = (zeros, leaves) if center_out else (leaves, zeros)
    return _finish(n, src, dst, "star")


def path_graph(n: int) -> CSRGraph:
    """Directed path 0 -> 1 -> ... -> n-1."""
    if n < 2:
        raise ConfigurationError("path_graph needs n >= 2")
    src = np.arange(n - 1, dtype=np.int64)
    return _finish(n, src, src + 1, "path")


def cycle_graph(n: int) -> CSRGraph:
    """Directed cycle 0 -> 1 -> ... -> n-1 -> 0."""
    if n < 2:
        raise ConfigurationError("cycle_graph needs n >= 2")
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return _finish(n, src, dst, "cycle")


def complete_graph(n: int) -> CSRGraph:
    """Complete digraph (all ordered pairs, no self-loops)."""
    if n < 2:
        raise ConfigurationError("complete_graph needs n >= 2")
    src = np.repeat(np.arange(n, dtype=np.int64), n - 1)
    dst = np.concatenate(
        [np.delete(np.arange(n, dtype=np.int64), i) for i in range(n)]
    )
    return _finish(n, src, dst, "complete")
