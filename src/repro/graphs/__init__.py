"""Graph substrate: CSR digraphs, builders, generators, weights, and I/O."""

from repro.graphs.csr import CSRGraph, build_graph
from repro.graphs.dynamic import GraphDelta
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    preferential_attachment,
    star_graph,
    stochastic_block_model,
    watts_strogatz,
)
from repro.graphs.io import (
    load_edge_list,
    load_graph_auto,
    load_npz,
    save_edge_list,
    save_npz,
)
from repro.graphs.stats import (
    GraphSummary,
    degree_histogram,
    effective_influence_ceiling,
    graph_summary,
    power_law_exponent,
    reciprocity,
)
from repro.graphs.subgraph import (
    Subgraph,
    induced_subgraph,
    largest_scc_subgraph,
)
from repro.graphs.traversal import (
    forward_reachable,
    is_dag,
    largest_scc_size,
    reverse_reachable,
    strongly_connected_components,
)
from repro.graphs.weights import (
    exponential_weights,
    lt_normalized_weights,
    reweight,
    trivalency_weights,
    uniform_weights,
    wc_variant_weights,
    wc_weights,
    weibull_weights,
)

__all__ = [
    "CSRGraph",
    "GraphDelta",
    "GraphSummary",
    "build_graph",
    "complete_graph",
    "cycle_graph",
    "degree_histogram",
    "erdos_renyi",
    "exponential_weights",
    "forward_reachable",
    "graph_summary",
    "is_dag",
    "largest_scc_size",
    "reverse_reachable",
    "strongly_connected_components",
    "Subgraph",
    "effective_influence_ceiling",
    "induced_subgraph",
    "largest_scc_subgraph",
    "load_edge_list",
    "load_graph_auto",
    "load_npz",
    "lt_normalized_weights",
    "path_graph",
    "power_law_exponent",
    "reciprocity",
    "preferential_attachment",
    "reweight",
    "save_edge_list",
    "save_npz",
    "star_graph",
    "stochastic_block_model",
    "trivalency_weights",
    "uniform_weights",
    "watts_strogatz",
    "wc_variant_weights",
    "wc_weights",
    "weibull_weights",
]
