"""Graph deltas: batched edge mutations applied to a live :class:`CSRGraph`.

A :class:`GraphDelta` describes one batch of edge *inserts*, *deletes*,
and *weight updates*.  :meth:`repro.graphs.csr.CSRGraph.apply_delta`
applies it in place by **block surgery**: only the adjacency blocks of
endpoints the delta touches are rewritten (re-sorted to the canonical
per-block order ``build_graph`` produces), every other block is carried
over as an untouched slice.  The patched arrays are therefore equivalent
to a from-scratch build — :meth:`CSRGraph.compact` re-derives them through
``build_graph`` and the property tests assert bit-identity.

The delta's :meth:`touched_nodes` are the **destinations** of every
changed edge.  That is the set RR-set repair keys on: reverse-reachable
generation only ever examines the in-adjacency blocks of nodes that are
*members* of the set being grown, so an RR set whose members avoid every
touched destination would replay bit-identically on the mutated graph —
it stays clean, and only sets containing a touched destination need
resampling (see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.exceptions import GraphFormatError

EdgeTriples = Sequence[Tuple[int, int, float]]
EdgePairs = Sequence[Tuple[int, int]]


def _as_edge_arrays(
    edges: Any, with_prob: bool, kind: str
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Coerce ``(src, dst[, prob])`` rows or parallel arrays to ndarrays."""
    if edges is None:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, (np.empty(0) if with_prob else None)
    if (
        isinstance(edges, tuple)
        and len(edges) in (2, 3)
        and all(isinstance(p, np.ndarray) for p in edges)
    ):
        parts = [np.asarray(p) for p in edges]
    else:
        width = 3 if with_prob else 2
        table = np.asarray(list(edges), dtype=np.float64)
        if table.size == 0:
            table = table.reshape(0, width)
        if table.ndim != 2 or table.shape[1] != width:
            raise GraphFormatError(
                f"{kind} rows must have {width} columns (src, dst"
                + (", prob)" if with_prob else ")")
            )
        parts = [table[:, i] for i in range(width)]
    src = np.asarray(parts[0], dtype=np.int64)
    dst = np.asarray(parts[1], dtype=np.int64)
    prob = None
    if with_prob:
        if len(parts) < 3:
            raise GraphFormatError(f"{kind} edges need a probability column")
        prob = np.asarray(parts[2], dtype=np.float64)
    if not all(len(p) == len(src) for p in parts):
        raise GraphFormatError(f"{kind} edge arrays disagree on length")
    return src, dst, prob


class GraphDelta:
    """One batch of edge inserts / deletes / probability updates.

    ``inserts`` and ``updates`` are ``(src, dst, prob)`` rows (or a tuple
    of three parallel arrays); ``deletes`` are ``(src, dst)`` rows.  An
    edge may appear in at most one of the three groups, inserts may not be
    self-loops, and probabilities must lie in ``[0, 1]`` — all checked at
    construction.  Existence against a concrete graph (deletes and updates
    must hit live edges, inserts must not duplicate one) is checked by
    ``CSRGraph.apply_delta``.
    """

    __slots__ = (
        "insert_src", "insert_dst", "insert_prob",
        "delete_src", "delete_dst",
        "update_src", "update_dst", "update_prob",
    )

    def __init__(
        self,
        inserts: Optional[EdgeTriples] = None,
        deletes: Optional[EdgePairs] = None,
        updates: Optional[EdgeTriples] = None,
    ) -> None:
        self.insert_src, self.insert_dst, self.insert_prob = _as_edge_arrays(
            inserts, True, "insert"
        )
        self.delete_src, self.delete_dst, _ = _as_edge_arrays(
            deletes, False, "delete"
        )
        self.update_src, self.update_dst, self.update_prob = _as_edge_arrays(
            updates, True, "update"
        )
        for name, src, dst in (
            ("insert", self.insert_src, self.insert_dst),
            ("delete", self.delete_src, self.delete_dst),
            ("update", self.update_src, self.update_dst),
        ):
            if len(src) and (src.min() < 0 or dst.min() < 0):
                raise GraphFormatError(f"{name} endpoints must be >= 0")
        if len(self.insert_src) and (self.insert_src == self.insert_dst).any():
            raise GraphFormatError("self-loops cannot be inserted")
        for name, prob in (
            ("insert", self.insert_prob), ("update", self.update_prob)
        ):
            if len(prob) and (prob.min() < 0.0 or prob.max() > 1.0):
                raise GraphFormatError(
                    f"{name} probabilities must lie in [0, 1]"
                )

    # ------------------------------------------------------------------
    @property
    def num_changes(self) -> int:
        return (
            len(self.insert_src) + len(self.delete_src) + len(self.update_src)
        )

    def touched_nodes(self) -> np.ndarray:
        """Destinations of every changed edge — the dirty-node set repair
        keys on (the only in-adjacency blocks the delta rewrites)."""
        return np.unique(
            np.concatenate(
                [self.insert_dst, self.delete_dst, self.update_dst]
            )
        )

    def _keys(self, n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Packed ``src * n + dst`` keys per group (for membership tests)."""
        scale = np.int64(n)
        return (
            self.insert_src * scale + self.insert_dst,
            self.delete_src * scale + self.delete_dst,
            self.update_src * scale + self.update_dst,
        )

    def validate_against(self, graph: Any) -> None:
        """Check the delta is applicable to ``graph`` (raises otherwise)."""
        n = graph.n
        for name, src, dst in (
            ("insert", self.insert_src, self.insert_dst),
            ("delete", self.delete_src, self.delete_dst),
            ("update", self.update_src, self.update_dst),
        ):
            if len(src) and (src.max() >= n or dst.max() >= n):
                raise GraphFormatError(
                    f"{name} endpoints out of range [0, {n})"
                )
        ins, dels, ups = self._keys(n)
        batch = np.concatenate([ins, dels, ups])
        if len(np.unique(batch)) != len(batch):
            raise GraphFormatError(
                "an edge may appear at most once across a delta's "
                "inserts, deletes, and updates"
            )
        existing = np.sort(
            np.repeat(
                np.arange(n, dtype=np.int64), np.diff(graph.out_indptr)
            )
            * np.int64(n)
            + graph.out_indices
        )
        for name, keys, want in (
            ("insert", ins, False), ("delete", dels, True), ("update", ups, True)
        ):
            if not len(keys):
                continue
            pos = np.searchsorted(existing, keys)
            pos = np.minimum(pos, len(existing) - 1) if len(existing) else pos
            present = (
                existing[pos] == keys
                if len(existing)
                else np.zeros(len(keys), dtype=bool)
            )
            if want and not present.all():
                missing = keys[~present][0]
                raise GraphFormatError(
                    f"cannot {name} edge "
                    f"{int(missing // n)}->{int(missing % n)}: no such edge"
                )
            if not want and present.any():
                dup = keys[present][0]
                raise GraphFormatError(
                    f"cannot insert edge {int(dup // n)}->{int(dup % n)}: "
                    "edge already exists"
                )

    # ------------------------------------------------------------------
    # wire format (serving endpoint, shard-worker journals + checkpoints)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, List[List[float]]]:
        """JSON-able dict of edge rows (round-trips via :meth:`from_payload`)."""
        return {
            "inserts": [
                [int(u), int(v), float(p)]
                for u, v, p in zip(
                    self.insert_src, self.insert_dst, self.insert_prob
                )
            ],
            "deletes": [
                [int(u), int(v)]
                for u, v in zip(self.delete_src, self.delete_dst)
            ],
            "updates": [
                [int(u), int(v), float(p)]
                for u, v, p in zip(
                    self.update_src, self.update_dst, self.update_prob
                )
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "GraphDelta":
        known = {"inserts", "deletes", "updates"}
        extra = set(payload) - known
        if extra:
            raise GraphFormatError(
                f"unknown delta fields {sorted(extra)!r}; "
                f"expected a subset of {sorted(known)!r}"
            )
        return cls(
            inserts=payload.get("inserts"),
            deletes=payload.get("deletes"),
            updates=payload.get("updates"),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphDelta(inserts={len(self.insert_src)}, "
            f"deletes={len(self.delete_src)}, "
            f"updates={len(self.update_src)})"
        )


# ----------------------------------------------------------------------
# CSR block surgery
# ----------------------------------------------------------------------

def patch_blocks(
    indptr: np.ndarray,
    indices: np.ndarray,
    probs: np.ndarray,
    rem_block: np.ndarray,
    rem_other: np.ndarray,
    add_block: np.ndarray,
    add_other: np.ndarray,
    add_prob: np.ndarray,
    order: str,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rewrite only the touched blocks of one CSR direction.

    ``rem_*`` are entries to drop, ``add_*`` entries to append; ``order``
    selects the canonical within-block ordering: ``"in"`` sorts by
    descending probability with the neighbor id as tie-break (the reverse
    CSR the SUBSIM samplers require), ``"out"`` sorts by neighbor id (the
    forward CSR's ``(src, dst)`` lexsort).  Untouched blocks are carried
    over as contiguous slices, so the result is bit-identical to a full
    rebuild while doing work proportional to the touched blocks only.
    """
    n = len(indptr) - 1
    affected = np.unique(np.concatenate([rem_block, add_block]))
    r_order = np.argsort(rem_block, kind="stable")
    rb, ro = rem_block[r_order], rem_other[r_order]
    a_order = np.argsort(add_block, kind="stable")
    ab, ao, ap = add_block[a_order], add_other[a_order], add_prob[a_order]
    pieces_i: List[np.ndarray] = []
    pieces_p: List[np.ndarray] = []
    new_counts = np.diff(indptr).astype(np.int64)
    prev = 0
    for b in affected:
        lo, hi = int(indptr[b]), int(indptr[b + 1])
        pieces_i.append(indices[prev:lo])
        pieces_p.append(probs[prev:lo])
        block_i = indices[lo:hi]
        block_p = probs[lo:hi]
        r_lo = int(np.searchsorted(rb, b))
        r_hi = int(np.searchsorted(rb, b, side="right"))
        if r_hi > r_lo:
            keep = ~np.isin(block_i, ro[r_lo:r_hi])
            block_i, block_p = block_i[keep], block_p[keep]
        a_lo = int(np.searchsorted(ab, b))
        a_hi = int(np.searchsorted(ab, b, side="right"))
        if a_hi > a_lo:
            block_i = np.concatenate([block_i, ao[a_lo:a_hi]])
            block_p = np.concatenate([block_p, ap[a_lo:a_hi]])
        if order == "in":
            sorter = np.lexsort((block_i, -block_p))
        else:
            sorter = np.argsort(block_i, kind="stable")
        pieces_i.append(block_i[sorter])
        pieces_p.append(block_p[sorter])
        new_counts[b] = len(block_i)
        prev = hi
    pieces_i.append(indices[prev:])
    pieces_p.append(probs[prev:])
    new_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(new_counts, out=new_indptr[1:])
    return (
        new_indptr,
        np.concatenate(pieces_i).astype(indices.dtype, copy=False),
        np.concatenate(pieces_p).astype(np.float64, copy=False),
    )


def delta_edits(
    delta: GraphDelta,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The delta as flat ``(rem_src, rem_dst, add_src, add_dst, add_prob)``.

    Updates decompose into a removal of the old row plus an addition with
    the new probability, which is what lets both CSR directions share one
    surgery primitive.
    """
    rem_src = np.concatenate([delta.delete_src, delta.update_src])
    rem_dst = np.concatenate([delta.delete_dst, delta.update_dst])
    add_src = np.concatenate([delta.insert_src, delta.update_src])
    add_dst = np.concatenate([delta.insert_dst, delta.update_dst])
    add_prob = np.concatenate([delta.insert_prob, delta.update_prob])
    return rem_src, rem_dst, add_src, add_dst, add_prob
