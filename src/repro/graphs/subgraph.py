"""Subgraph extraction: induced subgraphs and SCC restriction.

High-influence experiments live inside a graph's giant strongly connected
component — outside it, cascades die at the DAG frontier.  These helpers
carve out node-induced subgraphs while keeping edge probabilities, plus a
mapping back to the original ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graphs.csr import CSRGraph, build_graph
from repro.graphs.traversal import strongly_connected_components
from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class Subgraph:
    """An induced subgraph plus the id mapping to its parent graph.

    ``to_parent[i]`` is the parent id of subgraph node ``i``;
    ``from_parent`` maps parent ids back (-1 for nodes outside).
    """

    graph: CSRGraph
    to_parent: np.ndarray
    from_parent: np.ndarray

    def parent_seeds(self, seeds: Sequence[int]) -> list:
        """Translate subgraph seed ids into parent-graph ids."""
        return [int(self.to_parent[s]) for s in seeds]


def induced_subgraph(graph: CSRGraph, nodes: Sequence[int]) -> Subgraph:
    """Subgraph induced by ``nodes`` (edges with both endpoints inside).

    Node ids are relabelled ``0..len(nodes)-1`` in the given order;
    duplicates are rejected.
    """
    nodes = np.asarray(list(nodes), dtype=np.int64)
    if len(nodes) == 0:
        raise ConfigurationError("induced subgraph needs at least one node")
    if len(np.unique(nodes)) != len(nodes):
        raise ConfigurationError("node list contains duplicates")
    if nodes.min() < 0 or nodes.max() >= graph.n:
        raise ConfigurationError(f"node ids out of range [0, {graph.n})")

    from_parent = np.full(graph.n, -1, dtype=np.int64)
    from_parent[nodes] = np.arange(len(nodes), dtype=np.int64)

    src, dst, probs = graph.edges()
    keep = (from_parent[src] >= 0) & (from_parent[dst] >= 0)
    sub = build_graph(
        len(nodes),
        from_parent[src[keep]],
        from_parent[dst[keep]],
        probs[keep],
        weight_model=graph.weight_model,
        validate=False,
    )
    return Subgraph(graph=sub, to_parent=nodes, from_parent=from_parent)


def largest_scc_subgraph(graph: CSRGraph) -> Subgraph:
    """The subgraph induced by the largest strongly connected component."""
    components = strongly_connected_components(graph)
    if not components:
        raise ConfigurationError("graph has no nodes")
    biggest = max(components, key=len)
    return induced_subgraph(graph, sorted(biggest))
