"""Edge-weighting schemes for cascade models.

Every scheme follows the paper's Section 7 parameter settings:

* **WC** — ``p(u, v) = 1 / d_in(v)``.
* **WC variant** — ``p(u, v) = min(1, theta / d_in(v))`` with a constant
  ``theta >= 1`` that tunes the average RR-set size (high-influence ladder).
* **Uniform IC** — every edge has the same probability ``p``.
* **Trivalency** — each edge draws uniformly from a small probability menu.
* **Exponential** — weights drawn from Exp(lambda=1), then each node's
  incoming weights rescaled to sum to 1.
* **Weibull** — per-edge shape/scale drawn uniformly from (0, 10], weights
  drawn from the corresponding Weibull, then per-node rescaled to sum to 1.
* **LT normalisation** — divide each node's incoming weights by their sum
  whenever that sum exceeds 1, establishing the LT model's precondition.

Schemes are expressed through :func:`reweight`, which recomputes per-edge
probabilities from ``(src, dst)`` and rebuilds the dual-CSR structure, keeping
:class:`~repro.graphs.csr.CSRGraph` immutable.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.graphs.csr import CSRGraph, build_graph
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

EdgeProbFn = Callable[[np.ndarray, np.ndarray, CSRGraph], np.ndarray]


def reweight(graph: CSRGraph, prob_fn: EdgeProbFn, weight_model: str) -> CSRGraph:
    """Return a copy of ``graph`` whose edge probabilities are recomputed.

    ``prob_fn(src, dst, graph)`` receives the parallel edge-endpoint arrays
    and must return the new per-edge probability array.
    """
    src, dst, _ = graph.edges()
    probs = np.asarray(prob_fn(src, dst, graph), dtype=np.float64)
    if len(probs) != len(src):
        raise ConfigurationError(
            f"prob_fn returned {len(probs)} probabilities for {len(src)} edges"
        )
    if len(probs) and not (
        np.isfinite(probs).all() and probs.min() >= 0.0 and probs.max() <= 1.0
    ):
        raise ConfigurationError("prob_fn produced probabilities outside [0, 1]")
    return build_graph(
        graph.n, src, dst, probs, weight_model=weight_model, validate=False
    )


def wc_weights(graph: CSRGraph) -> CSRGraph:
    """Weighted-cascade model: ``p(u, v) = 1 / d_in(v)``."""
    in_deg = graph.in_degree()

    def fn(src, dst, g):
        return 1.0 / in_deg[dst]

    return reweight(graph, fn, "wc")


def wc_variant_weights(graph: CSRGraph, theta: float) -> CSRGraph:
    """WC variant of the paper's Section 7: ``p(u, v) = min(1, theta/d_in(v))``.

    ``theta = 1`` recovers plain WC; larger values raise influence, which is
    how the paper scales the average RR-set size ladder (theta_50 ... theta_32K).
    """
    if theta < 1.0:
        raise ConfigurationError("wc_variant requires theta >= 1")
    in_deg = graph.in_degree()

    def fn(src, dst, g):
        return np.minimum(1.0, theta / in_deg[dst])

    return reweight(graph, fn, f"wc_variant:{theta:g}")


def uniform_weights(graph: CSRGraph, p: float) -> CSRGraph:
    """Uniform IC model: every edge carries probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError("uniform probability must lie in [0, 1]")

    def fn(src, dst, g):
        return np.full(len(src), p, dtype=np.float64)

    return reweight(graph, fn, f"uniform:{p:g}")


def trivalency_weights(
    graph: CSRGraph,
    choices: Sequence[float] = (0.1, 0.01, 0.001),
    seed: SeedLike = None,
) -> CSRGraph:
    """Trivalency model: each edge draws uniformly from ``choices``."""
    for c in choices:
        if not 0.0 <= c <= 1.0:
            raise ConfigurationError("trivalency choices must lie in [0, 1]")
    rng = as_generator(seed)

    def fn(src, dst, g):
        menu = np.asarray(choices, dtype=np.float64)
        return menu[rng.integers(0, len(menu), size=len(src))]

    return reweight(graph, fn, f"trivalency:{tuple(choices)}")


def _rescale_in_sums(dst: np.ndarray, raw: np.ndarray, n: int) -> np.ndarray:
    """Scale each node's incoming raw weights so they sum to exactly 1.

    Non-finite raw weights (possible under extreme Weibull shapes) are
    treated as dominating their node: they get weight 1 relative to the
    node's other edges, then the node is renormalised.
    """
    raw = np.asarray(raw, dtype=np.float64)
    bad = ~np.isfinite(raw)
    if bad.any():
        raw = raw.copy()
        # Give the node's finite edges zero mass next to an infinite one.
        node_has_bad = np.zeros(n, dtype=bool)
        node_has_bad[dst[bad]] = True
        raw[node_has_bad[dst]] = 0.0
        raw[bad] = 1.0
    sums = np.zeros(n, dtype=np.float64)
    np.add.at(sums, dst, raw)
    sums[sums == 0.0] = 1.0  # nodes with no mass keep zeros unchanged
    return raw / sums[dst]


def exponential_weights(
    graph: CSRGraph, lam: float = 1.0, seed: SeedLike = None
) -> CSRGraph:
    """Skewed weights: raw ~ Exp(lam), per-node incoming sum rescaled to 1.

    Matches the paper's exponential-distribution setting (lambda = 1).
    """
    if lam <= 0:
        raise ConfigurationError("lambda must be positive")
    rng = as_generator(seed)

    def fn(src, dst, g):
        raw = rng.exponential(1.0 / lam, size=len(src))
        return _rescale_in_sums(dst, raw, g.n)

    return reweight(graph, fn, f"exponential:{lam:g}")


def weibull_weights(graph: CSRGraph, seed: SeedLike = None) -> CSRGraph:
    """Skewed weights: per-edge Weibull(a, b) with a, b ~ U(0, 10], per-node
    incoming sum rescaled to 1 — the paper's Weibull setting (after [38]).
    """
    rng = as_generator(seed)

    def fn(src, dst, g):
        count = len(src)
        # Shapes below ~0.05 make (-ln U)^(1/a) overflow doubles; the
        # rescaling treats those as "this edge dominates its node", which
        # is also the distribution's own reading.  Draw from (0, 10].
        a = 10.0 * (1.0 - rng.random(count))
        b = 10.0 * (1.0 - rng.random(count))
        with np.errstate(over="ignore"):
            raw = b * rng.weibull(np.maximum(a, 1e-3), size=count)
        return _rescale_in_sums(dst, raw, g.n)

    return reweight(graph, fn, "weibull")


def lt_normalized_weights(graph: CSRGraph) -> CSRGraph:
    """Normalise so each node's incoming weights sum to at most 1 (LT model).

    Nodes whose incoming sum already satisfies the constraint are unchanged.
    """
    sums = graph.in_prob_sums

    def fn(src, dst, g):
        _, _, probs = g.edges()
        scale = np.maximum(sums[dst], 1.0)
        return probs / scale

    return reweight(graph, fn, f"lt:{graph.weight_model}")


def apply_scheme(graph: CSRGraph, scheme: str, seed: SeedLike = None) -> CSRGraph:
    """Apply a weight scheme named like ``"wc"``, ``"wc-variant:2.5"``,
    ``"uniform:0.01"``.

    This is the string form the CLI and the serving layer's graph registry
    share: a scheme name, optionally followed by ``:<parameter>``.  Raises
    :class:`~repro.utils.exceptions.ConfigurationError` for unknown names.
    """
    name, _, arg = scheme.partition(":")
    if name == "wc":
        return wc_weights(graph)
    if name == "wc-variant":
        return wc_variant_weights(graph, float(arg))
    if name == "uniform":
        return uniform_weights(graph, float(arg))
    if name == "exponential":
        return exponential_weights(graph, seed=seed)
    if name == "weibull":
        return weibull_weights(graph, seed=seed)
    if name == "trivalency":
        return trivalency_weights(graph, seed=seed)
    if name == "lt":
        return lt_normalized_weights(graph)
    raise ConfigurationError(
        f"unknown weight scheme {scheme!r}; use wc, wc-variant:<theta>, "
        "uniform:<p>, exponential, weibull, trivalency, or lt"
    )
