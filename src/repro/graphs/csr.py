"""Compressed-sparse-row directed graphs with per-edge propagation probabilities.

The whole library works on :class:`CSRGraph`: an immutable digraph storing
*both* adjacency directions as CSR arrays.  Reverse-reachable set generation
walks the **in**-adjacency (``in_indptr`` / ``in_indices`` / ``in_probs``),
forward cascade simulation walks the **out**-adjacency.

Within each node's in-adjacency block, edges are sorted in **descending order
of probability**.  That ordering is required by the index-free general-IC
subset sampler (paper Section 3.3) and is harmless everywhere else.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.utils.exceptions import GraphFormatError

ArrayLike = Union[np.ndarray, Iterable[int], Iterable[float]]


class CSRGraph:
    """A weighted digraph in dual-CSR form.

    The arrays are treated as immutable by every reader — samplers cache
    preprocessing keyed on :meth:`fingerprint` — but the graph itself can
    evolve through :meth:`apply_delta`, which rewrites only the adjacency
    blocks a :class:`~repro.graphs.dynamic.GraphDelta` touches and advances
    :attr:`delta_epoch`.  :meth:`compact` periodically re-derives the whole
    layout through :func:`build_graph` (automatic every
    :attr:`COMPACT_EVERY` deltas).

    Attributes
    ----------
    n, m:
        Node and edge counts.
    out_indptr, out_indices, out_probs:
        CSR arrays of the forward adjacency: the out-neighbors of node ``u``
        are ``out_indices[out_indptr[u]:out_indptr[u + 1]]`` with matching
        propagation probabilities in ``out_probs``.
    in_indptr, in_indices, in_probs:
        CSR arrays of the reverse adjacency (in-neighbors), with each node's
        block sorted by descending probability.
    in_prob_sums:
        Per-node sum of incoming-edge probabilities (the ``mu`` of the subset
        sampling problem at that node).
    uniform_in:
        Per-node boolean: ``True`` when all incoming edges of the node carry
        the same probability (the WC / uniform-IC fast path of SUBSIM).
    weight_model:
        Free-form tag recording how probabilities were assigned (e.g. "wc",
        "uniform:0.01"); informational only.
    delta_epoch:
        Number of :meth:`apply_delta` batches applied since construction;
        monotone even across :meth:`compact`.
    """

    #: automatic :meth:`compact` after this many uncompacted deltas
    COMPACT_EVERY = 64

    __slots__ = (
        "n",
        "m",
        "out_indptr",
        "out_indices",
        "out_probs",
        "in_indptr",
        "in_indices",
        "in_probs",
        "in_prob_sums",
        "uniform_in",
        "weight_model",
        "delta_epoch",
        "_uncompacted",
        "_fingerprint",
        "_cache",
    )

    def __init__(
        self,
        n: int,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        out_probs: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        in_probs: np.ndarray,
        weight_model: str = "custom",
    ) -> None:
        self.n = int(n)
        self.m = int(len(out_indices))
        self.out_indptr = out_indptr
        self.out_indices = out_indices
        self.out_probs = out_probs
        self.in_indptr = in_indptr
        self.in_indices = in_indices
        self.in_probs = in_probs
        self.weight_model = weight_model
        self._derive_in_stats()
        self.delta_epoch = 0
        self._uncompacted = 0
        self._fingerprint: Optional[str] = None
        self._cache: Dict[str, Tuple[str, Any]] = {}

    def _derive_in_stats(self) -> None:
        """(Re)compute the per-node reductions over the reverse CSR."""
        in_indptr, in_probs = self.in_indptr, self.in_probs
        self.in_prob_sums = np.add.reduceat(
            np.concatenate([in_probs, [0.0]]), in_indptr[:-1]
        ) if self.m else np.zeros(self.n)
        # reduceat quirk: empty blocks pick up the *next* block's first value;
        # zero them out explicitly.
        empty = np.diff(in_indptr) == 0
        if empty.any():
            self.in_prob_sums[empty] = 0.0
        self.uniform_in = _uniform_in_flags(in_indptr, in_probs)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def out_degree(self, v: Optional[int] = None):
        """Out-degree of ``v``, or the full out-degree array if ``v`` is None."""
        if v is None:
            return np.diff(self.out_indptr)
        return int(self.out_indptr[v + 1] - self.out_indptr[v])

    def in_degree(self, v: Optional[int] = None):
        """In-degree of ``v``, or the full in-degree array if ``v`` is None."""
        if v is None:
            return np.diff(self.in_indptr)
        return int(self.in_indptr[v + 1] - self.in_indptr[v])

    def in_neighbors(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbor_ids, probabilities)`` of edges into ``v``."""
        lo, hi = self.in_indptr[v], self.in_indptr[v + 1]
        return self.in_indices[lo:hi], self.in_probs[lo:hi]

    def out_neighbors(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbor_ids, probabilities)`` of edges out of ``v``."""
        lo, hi = self.out_indptr[v], self.out_indptr[v + 1]
        return self.out_indices[lo:hi], self.out_probs[lo:hi]

    def edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return parallel ``(src, dst, prob)`` arrays of all edges."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.out_degree())
        return src, self.out_indices.copy(), self.out_probs.copy()

    def average_degree(self) -> float:
        """Average out-degree m / n."""
        return self.m / self.n if self.n else 0.0

    def fingerprint(self) -> str:
        """Content hash identifying the graph (structure + probabilities).

        SHA-256 over ``n`` and the reverse-CSR arrays — the representation
        RR generation actually walks — so two graphs with the same
        fingerprint produce identical RR-set distributions and identical
        deterministic counters.  Cached after the first call and
        invalidated by :meth:`apply_delta`, so the fingerprint advances
        with every delta that changes the arrays.
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            digest.update(str(self.n).encode())
            for array in (self.in_indptr, self.in_indices, self.in_probs):
                digest.update(np.ascontiguousarray(array).tobytes())
            self._fingerprint = digest.hexdigest()[:16]
        return self._fingerprint

    def cached(self, key: str, builder: Callable[["CSRGraph"], Any]) -> Any:
        """Memoised per-graph preprocessing (sampler tables, kernel arrays).

        Samplers derive immutable structures from the in-adjacency (bucket
        boundaries, alias tables, sorted-segment arrays); caching them on
        the graph lets every generator instance — sequential or batched —
        share one build.  Entries are guarded by :meth:`fingerprint`, so a
        stale entry can never serve a graph whose arrays differ, and the
        cache is dropped on pickling (fan-out workers rebuild lazily).
        """
        fp = self.fingerprint()
        entry = self._cache.get(key)
        if entry is None or entry[0] != fp:
            entry = (fp, builder(self))
            self._cache[key] = entry
        return entry[1]

    def to_shared(self):
        """Pack this graph into a shared-memory block (see
        :func:`repro.graphs.shared.share_graph`).  Returns
        ``(handle, shm)``; the caller owns the block's lifetime."""
        from repro.graphs.shared import share_graph

        return share_graph(self)

    @staticmethod
    def from_shared(handle) -> "CSRGraph":
        """Attach a graph previously shared with :meth:`to_shared`
        (zero-copy read-only views; see
        :func:`repro.graphs.shared.attach_graph`)."""
        from repro.graphs.shared import attach_graph

        return attach_graph(handle)

    def __getstate__(self) -> Dict[str, Any]:
        # Exclude the preprocessing cache: worker processes rebuild what
        # they need, and shipping alias/segment tables would bloat every
        # fan-out pickle.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_cache"
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._cache = {}

    # ------------------------------------------------------------------
    # incremental mutation
    # ------------------------------------------------------------------
    def apply_delta(self, delta: Any, auto_compact: bool = True) -> np.ndarray:
        """Apply a :class:`~repro.graphs.dynamic.GraphDelta` in place.

        Only the adjacency blocks of touched endpoints are rewritten (and
        re-sorted to the canonical per-block order); every other block is
        carried over as a contiguous slice, so the patched arrays stay
        bit-identical to a from-scratch :func:`build_graph`.  The cached
        fingerprint is dropped — it advances with the content — which also
        invalidates every :meth:`cached` sampler table.  Returns the
        delta's touched destination nodes (the dirty-node set RR repair
        keys on).

        With ``auto_compact`` (default), every :attr:`COMPACT_EVERY`-th
        delta triggers :meth:`compact`.
        """
        from repro.graphs.dynamic import delta_edits, patch_blocks

        delta.validate_against(self)
        touched = delta.touched_nodes()
        if delta.num_changes == 0:
            return touched
        rem_src, rem_dst, add_src, add_dst, add_prob = delta_edits(delta)
        self.in_indptr, self.in_indices, self.in_probs = patch_blocks(
            self.in_indptr, self.in_indices, self.in_probs,
            rem_dst, rem_src, add_dst, add_src, add_prob, order="in",
        )
        self.out_indptr, self.out_indices, self.out_probs = patch_blocks(
            self.out_indptr, self.out_indices, self.out_probs,
            rem_src, rem_dst, add_src, add_dst, add_prob, order="out",
        )
        self.m = int(len(self.out_indices))
        self._derive_in_stats()
        self._fingerprint = None
        self.delta_epoch += 1
        self._uncompacted += 1
        if auto_compact and self._uncompacted >= self.COMPACT_EVERY:
            self.compact()
        return touched

    def compact(self) -> None:
        """Re-derive the CSR layout from scratch through :func:`build_graph`.

        Because :meth:`apply_delta` keeps every block canonically ordered,
        compaction does not change content — it re-validates the edge-set
        invariants, drops any buffer slack the surgery left behind, and
        resets the auto-compaction counter.  :attr:`delta_epoch` is
        preserved.
        """
        src, dst, prob = self.edges()
        rebuilt = build_graph(
            self.n, src, dst, prob, weight_model=self.weight_model
        )
        for slot in (
            "out_indptr", "out_indices", "out_probs",
            "in_indptr", "in_indices", "in_probs",
            "in_prob_sums", "uniform_in",
        ):
            setattr(self, slot, getattr(rebuilt, slot))
        self.m = rebuilt.m
        self._fingerprint = None
        self._uncompacted = 0

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRGraph":
        """Return the graph with every edge reversed."""
        src, dst, prob = self.edges()
        return build_graph(self.n, dst, src, prob, weight_model=self.weight_model)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(n={self.n}, m={self.m}, "
            f"weight_model={self.weight_model!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.n == other.n
            and self.m == other.m
            and np.array_equal(self.out_indptr, other.out_indptr)
            and np.array_equal(self.out_indices, other.out_indices)
            and np.allclose(self.out_probs, other.out_probs)
        )

    def __hash__(self) -> int:  # graphs are used as dict keys in caches
        return hash((self.n, self.m, self.weight_model))


def _uniform_in_flags(in_indptr: np.ndarray, in_probs: np.ndarray) -> np.ndarray:
    """Per-node flag: all in-edge probabilities equal (within float equality).

    Because blocks are sorted descending, a block is uniform iff its first and
    last entries match.
    """
    n = len(in_indptr) - 1
    flags = np.ones(n, dtype=bool)
    starts = in_indptr[:-1]
    ends = in_indptr[1:]
    nonempty = ends > starts
    if nonempty.any():
        first = in_probs[starts[nonempty]]
        last = in_probs[ends[nonempty] - 1]
        flags[nonempty] = first == last
    return flags


def build_graph(
    n: int,
    src: ArrayLike,
    dst: ArrayLike,
    probs: ArrayLike,
    weight_model: str = "custom",
    validate: bool = True,
) -> CSRGraph:
    """Construct a :class:`CSRGraph` from parallel edge arrays.

    Parameters
    ----------
    n:
        Number of nodes; node ids must lie in ``[0, n)``.
    src, dst, probs:
        Parallel arrays describing directed edges ``src -> dst`` with
        propagation probability ``probs`` in ``[0, 1]``.
    weight_model:
        Informational tag stored on the graph.
    validate:
        When True (default), check id ranges, probability ranges, and reject
        self-loops and duplicate edges.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    probs = np.asarray(probs, dtype=np.float64)
    if not (len(src) == len(dst) == len(probs)):
        raise GraphFormatError(
            f"edge arrays disagree on length: {len(src)}, {len(dst)}, {len(probs)}"
        )
    if validate and len(src):
        if src.min() < 0 or dst.min() < 0 or src.max() >= n or dst.max() >= n:
            raise GraphFormatError(f"edge endpoints out of range [0, {n})")
        if (src == dst).any():
            raise GraphFormatError("self-loops are not supported")
        if probs.min() < 0.0 or probs.max() > 1.0:
            raise GraphFormatError("edge probabilities must lie in [0, 1]")
        packed = src * np.int64(n) + dst
        if len(np.unique(packed)) != len(packed):
            raise GraphFormatError("duplicate edges are not supported")

    # Forward CSR: sort edges by (src, dst) for deterministic layout.
    order = np.lexsort((dst, src))
    out_indices = dst[order]
    out_probs = probs[order]
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(out_indptr, src + 1, 1)
    np.cumsum(out_indptr, out=out_indptr)

    # Reverse CSR: within each destination block, descending probability
    # (break probability ties by source id for determinism).
    rorder = np.lexsort((src, -probs, dst))
    in_indices = src[rorder]
    in_probs = probs[rorder]
    in_indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(in_indptr, dst + 1, 1)
    np.cumsum(in_indptr, out=in_indptr)

    return CSRGraph(
        n,
        out_indptr,
        out_indices,
        out_probs,
        in_indptr,
        in_indices,
        in_probs,
        weight_model=weight_model,
    )
