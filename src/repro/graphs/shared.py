"""Zero-copy graph sharing between processes via POSIX shared memory.

The sharded worker runtime spawns long-lived processes that each need the
full :class:`~repro.graphs.csr.CSRGraph`.  Pickling the CSR arrays into
every worker (the per-call fan-out strategy) costs one full copy per
process per request; instead the parent packs all graph arrays into a
single :class:`multiprocessing.shared_memory.SharedMemory` block **once**
and workers attach read-only NumPy views onto it — the graph is mapped,
never copied, no matter how many workers or requests follow.

The handle describing the block (:class:`SharedGraphHandle`) is a small
picklable value object: block name, scalar graph attributes, and one
``(attr, dtype, shape, offset)`` spec per array.  Lifetime contract: the
*creator* owns the block and must call :func:`unlink_shared` when done;
attachers only hold a reference (kept alive on the attached graph itself)
and are explicitly unregistered from the resource tracker so worker exit
never unlinks — or warns about — a block the parent still serves.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Tuple

import numpy as np

from repro.graphs.csr import CSRGraph

#: array attributes packed into the shared block, in layout order.  The
#: derived per-node arrays (``in_prob_sums``, ``uniform_in``) are included
#: so attaching never re-runs the O(m) reductions ``__init__`` performs.
SHARED_ARRAYS: Tuple[str, ...] = (
    "out_indptr",
    "out_indices",
    "out_probs",
    "in_indptr",
    "in_indices",
    "in_probs",
    "in_prob_sums",
    "uniform_in",
)

#: key under which an attached graph stashes its SharedMemory reference in
#: the (pickle-excluded) per-graph cache, keeping the mapping alive for as
#: long as the graph object lives.
_SHM_CACHE_KEY = "__shared_memory__"


@dataclass(frozen=True)
class SharedArraySpec:
    """Placement of one graph array inside the shared block."""

    attr: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable description of a graph resident in shared memory."""

    shm_name: str
    n: int
    m: int
    weight_model: str
    fingerprint: str
    specs: Tuple[SharedArraySpec, ...]
    total_bytes: int


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a named block without registering it with the tracker.

    Attaching normally registers the block with the (process-shared)
    resource tracker, which would unlink it — with a noisy warning — when
    the attaching process exits, and whose ``unregister`` on attacher exit
    races the creator's own ``unlink``.  The creator owns the block's
    lifetime, so attachers must not be tracked at all.  CPython offers no
    public opt-out, hence the guarded monkeypatch; on failure we fall back
    to default (tracked) behavior, which is merely noisy, not incorrect
    for the block's data.
    """
    try:  # pragma: no cover - depends on CPython internals
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except Exception:
        return shared_memory.SharedMemory(name=name)


def share_graph(
    graph: CSRGraph,
) -> Tuple[SharedGraphHandle, shared_memory.SharedMemory]:
    """Pack ``graph`` into one shared-memory block.

    Returns the picklable handle plus the block itself; the caller owns the
    block and must eventually :func:`unlink_shared` it.  Array offsets are
    8-byte aligned so every attached view is properly aligned regardless of
    the dtype mix.
    """
    specs = []
    offset = 0
    arrays = []
    for attr in SHARED_ARRAYS:
        arr = np.ascontiguousarray(getattr(graph, attr))
        offset = (offset + 7) & ~7
        specs.append(
            SharedArraySpec(attr, arr.dtype.str, tuple(arr.shape), offset)
        )
        arrays.append(arr)
        offset += arr.nbytes
    total = max(offset, 1)
    shm = shared_memory.SharedMemory(create=True, size=total)
    for spec, arr in zip(specs, arrays):
        dst = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
        )
        dst[...] = arr
    handle = SharedGraphHandle(
        shm_name=shm.name,
        n=graph.n,
        m=graph.m,
        weight_model=graph.weight_model,
        fingerprint=graph.fingerprint(),
        specs=tuple(specs),
        total_bytes=total,
    )
    return handle, shm


def attach_graph(handle: SharedGraphHandle) -> CSRGraph:
    """Map the shared block into this process as a read-only ``CSRGraph``.

    No array data is copied and none of the ``__init__`` reductions re-run:
    the instance is assembled slot-by-slot from views onto the block.  The
    fingerprint travels with the handle, so per-graph sampler-table caches
    (:meth:`CSRGraph.cached`) hit without hashing megabytes on attach.
    """
    shm = _attach_untracked(handle.shm_name)
    graph = object.__new__(CSRGraph)
    graph.n = handle.n
    graph.m = handle.m
    graph.weight_model = handle.weight_model
    for spec in handle.specs:
        view = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
        )
        view.flags.writeable = False
        setattr(graph, spec.attr, view)
    graph.delta_epoch = 0
    graph._uncompacted = 0
    graph._fingerprint = handle.fingerprint
    # The cache dict is excluded from pickling, making it the right home
    # for the process-local SharedMemory reference that keeps the mapping
    # alive as long as the graph does.
    graph._cache = {_SHM_CACHE_KEY: (handle.fingerprint, shm)}
    return graph


def unlink_shared(shm: shared_memory.SharedMemory) -> None:
    """Release the block (creator side); safe to call more than once."""
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - teardown race
        pass
    try:
        shm.unlink()
    except (OSError, FileNotFoundError):
        pass
