"""Walker's alias method for O(1) draws from a discrete distribution [41].

Used by :class:`~repro.sampling.bucket.IndexedBucketSampler` to pick the next
visited bucket in constant time, and exported as a general utility.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def build_alias_arrays(
    weights: Sequence[float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Walker construction: return the ``(prob, alias)`` arrays directly.

    The flat form lets callers (the batched LT kernel) concatenate many
    per-node tables into one pair of arrays; :class:`AliasTable` wraps the
    same construction for single-table use.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or len(weights) == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    total = float(weights.sum())
    if total <= 0.0:
        raise ValueError("weights must have a positive sum")

    n = len(weights)
    # Divide before scaling: n / total can overflow to inf for denormal
    # totals, poisoning the small/large partition with NaNs.
    scaled = (weights / total) * n
    prob = np.ones(n, dtype=np.float64)
    alias = np.arange(n, dtype=np.int64)

    small = [i for i in range(n) if scaled[i] < 1.0]
    large = [i for i in range(n) if scaled[i] >= 1.0]
    while small and large:
        s = small.pop()
        big = large.pop()
        prob[s] = scaled[s]
        alias[s] = big
        scaled[big] = scaled[big] - (1.0 - scaled[s])
        if scaled[big] < 1.0:
            small.append(big)
        else:
            large.append(big)
    # Residual entries (floating-point leftovers) keep prob == 1.
    return prob, alias


class AliasTable:
    """O(1)-per-draw sampler over ``{0, ..., len(weights) - 1}``.

    Weights need not be normalised; they must be non-negative with a positive
    sum.  Construction is O(n).
    """

    __slots__ = ("_prob", "_alias", "_n")

    def __init__(self, weights: Sequence[float]) -> None:
        self._prob, self._alias = build_alias_arrays(weights)
        self._n = len(self._prob)

    def __len__(self) -> int:
        return self._n

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one index in O(1)."""
        i = int(rng.integers(0, self._n))
        if rng.random() < self._prob[i]:
            return i
        return int(self._alias[i])

    def sample_many(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Vectorised batch draw of ``count`` indices."""
        idx = rng.integers(0, self._n, size=count)
        coins = rng.random(count)
        take_alias = coins >= self._prob[idx]
        out = idx.copy()
        out[take_alias] = self._alias[idx[take_alias]]
        return out
