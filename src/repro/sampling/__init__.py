"""Subset-sampling primitives underlying SUBSIM (paper Section 3).

Three samplers solve the independent subset-sampling problem — draw a random
subset of ``h`` elements where element ``i`` enters independently with
probability ``p_i`` — at different generality/preprocessing trade-offs:

* :func:`sample_equal_probability` — all ``p_i`` equal (WC / uniform IC);
  geometric skipping, expected cost ``O(1 + mu)`` with zero preprocessing.
* :func:`sample_sorted_descending` — general ``p_i`` sorted descending;
  index-free positional bucketing, expected cost ``O(1 + mu + log h)``.
* :class:`BucketSampler` — general ``p_i`` in any order with ``O(h)``
  preprocessing (Bringmann–Panagiotou), cost ``O(1 + mu + log h)``; its
  :class:`IndexedBucketSampler` refinement adds the bucket-jump table from
  paper Section 3.3 to reach expected ``O(1 + mu)``.

:class:`AliasTable` (Walker) provides O(1) draws from arbitrary discrete
distributions and powers the bucket-jump rows.
"""

from repro.sampling.alias import AliasTable
from repro.sampling.bucket import BucketSampler, IndexedBucketSampler
from repro.sampling.geometric import (
    geometric_jump,
    sample_equal_probability,
    truncated_geometric,
)
from repro.sampling.sorted_sampler import sample_sorted_descending

__all__ = [
    "AliasTable",
    "BucketSampler",
    "IndexedBucketSampler",
    "geometric_jump",
    "sample_equal_probability",
    "sample_sorted_descending",
    "truncated_geometric",
]
