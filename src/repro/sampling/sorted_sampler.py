"""Index-free subset sampling over descending-sorted probabilities.

The paper's practical general-IC scheme (Section 3.3, "Index-free method"):
when the probabilities ``p_0 >= p_1 >= ... >= p_{h-1}`` are sorted, bucket
elements by *position* — bucket ``k`` spans positions ``[2^k - 1, 2^{k+1} - 1)``
(0-indexed) — and run geometric skipping at rate ``q_k = p[2^k - 1]``, the
bucket's maximum, accepting each trial hit at position ``j`` with probability
``p[j] / q_k``.  Because ``p_x <= p_{ceil(x/2)}``, the thinning overhead per
bucket is bounded and the expected total cost is ``O(1 + mu + log h)`` — with
no preprocessing beyond the sort, which the CSR graph builder already
performs on every node's in-adjacency block.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.sampling.geometric import geometric_jump


def sample_sorted_descending(
    probs: Sequence[float],
    rng: np.random.Generator,
    validate: bool = False,
) -> List[int]:
    """Sample a subset of positions from a descending probability vector.

    Each position ``i`` is selected independently with probability
    ``probs[i]``.  Set ``validate=True`` to assert the ordering (O(h), meant
    for tests).
    """
    probs = np.asarray(probs, dtype=np.float64)
    h = len(probs)
    if validate and h > 1 and (np.diff(probs) > 1e-12).any():
        raise ValueError("probs must be sorted in descending order")
    selected: List[int] = []
    if h == 0:
        return selected

    start = 0  # 0-indexed bucket start: 2^k - 1
    while start < h:
        end = min(2 * start + 1, h)  # next bucket starts at 2^(k+1) - 1
        q = float(probs[start])
        if q <= 0.0:
            break  # descending: everything from here on has probability 0
        if q >= 1.0:
            # Degenerate ceiling: examine each position, accept w.p. p[j].
            for j in range(start, end):
                p = probs[j]
                if p >= 1.0 or rng.random() < p:
                    selected.append(j)
        else:
            position = start + geometric_jump(q, rng) - 1
            while position < end:
                p = probs[position]
                if p >= q or rng.random() < p / q:
                    selected.append(position)
                position += geometric_jump(q, rng)
        start = end
    return selected
