"""Per-graph sampler preprocessing, cached on :class:`CSRGraph`.

Every sampler in this package derives small immutable structures from a
node's in-adjacency block before it can draw: the uniform path needs the
per-node rate and its ``log1p``, the sorted path needs the positional
bucket boundaries of Section 3.3, and the batched LT kernel needs a Walker
alias table per node.  Rebuilding those per *generator instance* wastes
work — algorithms construct many generators over one graph (one per bank
role, one per fan-out worker, one per query) — so the builders here are
designed to be memoised on the graph via :meth:`CSRGraph.cached
<repro.graphs.csr.CSRGraph.cached>`, keyed by the graph fingerprint.

All builders are pure functions of the graph arrays: they consume no
randomness and return arrays that are never mutated afterwards, so sharing
them across generators cannot change any sampled value or counter.
"""

from __future__ import annotations

import math
from typing import Dict, NamedTuple, Tuple

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.sampling.alias import build_alias_arrays

#: cache keys on :meth:`CSRGraph.cached`
UNIFORM_KEY = "sampling.uniform_arrays"
SEGMENTS_KEY = "sampling.sorted_segments"
LT_ALIAS_KEY = "sampling.lt_alias"
SAMPLER_DICT_KEY = "sampling.node_samplers"


class UniformArrays(NamedTuple):
    """Per-node uniform-rate arrays for the equal-probability fast path.

    ``is_uniform`` marks nodes whose (non-empty) in-block carries one
    probability; ``p`` holds that rate (0 elsewhere, and 0 for degenerate
    rates whose ``log1p`` underflows); ``log1mp`` holds ``log(1 - p)`` for
    rates strictly inside (0, 1).
    """

    is_uniform: np.ndarray
    p: np.ndarray
    log1mp: np.ndarray


def build_uniform_arrays(graph: CSRGraph) -> UniformArrays:
    deg = graph.in_degree()
    nonempty = deg > 0
    first = np.zeros(graph.n, dtype=np.float64)
    first[nonempty] = graph.in_probs[graph.in_indptr[:-1][nonempty]]
    is_uniform = graph.uniform_in & nonempty
    p = np.where(is_uniform, first, 0.0)
    log1mp = np.zeros(graph.n, dtype=np.float64)
    mid = is_uniform & (p > 0.0) & (p < 1.0)
    log1mp[mid] = np.log1p(-p[mid])
    # Probabilities below ~1e-300 underflow log1p to a denormal whose
    # reciprocal overflows; such nodes are unsampleable in practice, so
    # fold them into the p == 0 fast path.
    degenerate = mid & (log1mp > -1e-300)
    p[degenerate] = 0.0
    return UniformArrays(is_uniform, p, log1mp)


class SortedSegments(NamedTuple):
    """Flat positional-bucket boundaries of every skewed node (Section 3.3).

    Node ``u``'s buckets are segment ids ``node_indptr[u]:node_indptr[u+1]``;
    segment ``s`` spans edge positions ``[start[s], end[s])`` of the
    descending-sorted in-block, with ceiling probability ``q[s]`` (the
    probability at its first slot) and ``log1mq[s] = log(1 - q[s])`` for
    ceilings strictly below 1 (0 where the ceiling is certain).  Buckets
    whose ceiling is 0 — and everything after them, since blocks are sorted
    descending — are omitted, matching the sequential sampler's early
    ``break``.  Only non-uniform nodes get segments; uniform nodes take the
    geometric fast path.
    """

    node_indptr: np.ndarray
    start: np.ndarray
    end: np.ndarray
    q: np.ndarray
    log1mq: np.ndarray


def build_sorted_segments(graph: CSRGraph) -> SortedSegments:
    indptr = graph.in_indptr
    probs = graph.in_probs
    deg = graph.in_degree()
    skewed = np.flatnonzero(~graph.uniform_in & (deg > 0))
    counts = np.zeros(graph.n, dtype=np.int64)
    starts: list = []
    ends: list = []
    qs: list = []
    for u in skewed:
        lo = int(indptr[u])
        hi = int(indptr[u + 1])
        s = lo
        c = 0
        while s < hi:
            e = min(lo + 2 * (s - lo) + 1, hi)
            qv = float(probs[s])
            if not qv > 0.0:  # catches 0, negatives, and NaN
                break
            if qv < 1.0 and math.log1p(-qv) > -1e-300:
                break  # degenerate rate: geometric jumps would overflow
            starts.append(s)
            ends.append(e)
            qs.append(qv)
            c += 1
            s = e
        counts[u] = c
    node_indptr = np.zeros(graph.n + 1, dtype=np.int64)
    np.cumsum(counts, out=node_indptr[1:])
    q = np.asarray(qs, dtype=np.float64)
    log1mq = np.zeros(len(q), dtype=np.float64)
    partial = q < 1.0
    log1mq[partial] = np.log1p(-q[partial])
    return SortedSegments(
        node_indptr,
        np.asarray(starts, dtype=np.int64),
        np.asarray(ends, dtype=np.int64),
        q,
        log1mq,
    )


class LTAliasTables(NamedTuple):
    """Flat per-node Walker tables for the batched LT live-edge pick.

    Node ``u``'s table occupies ``indptr[u]:indptr[u+1]`` (size
    ``d_in(u) + 1`` for nodes with in-edges, 0 otherwise).  Local outcomes
    ``0..d_in(u)-1`` select the corresponding slot of the in-block; the
    last outcome is "no live in-edge" with weight ``1 - in_prob_sums[u]``.
    One uniform slot pick plus one coin per draw, regardless of degree.
    """

    indptr: np.ndarray
    prob: np.ndarray
    alias: np.ndarray


def build_lt_alias_tables(graph: CSRGraph) -> LTAliasTables:
    in_indptr = graph.in_indptr
    probs = graph.in_probs
    deg = graph.in_degree()
    sizes = np.where(deg > 0, deg + 1, 0)
    indptr = np.zeros(graph.n + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    total = int(indptr[-1])
    prob = np.empty(total, dtype=np.float64)
    alias = np.empty(total, dtype=np.int64)
    for u in np.flatnonzero(deg > 0):
        lo = int(in_indptr[u])
        hi = int(in_indptr[u + 1])
        block = probs[lo:hi]
        stop_weight = max(0.0, 1.0 - float(block.sum()))
        weights = np.empty(hi - lo + 1, dtype=np.float64)
        weights[:-1] = block
        weights[-1] = stop_weight
        p_row, a_row = build_alias_arrays(weights)
        off = int(indptr[u])
        prob[off: off + len(p_row)] = p_row
        alias[off: off + len(a_row)] = a_row
    return LTAliasTables(indptr, prob, alias)


def uniform_arrays(graph: CSRGraph) -> UniformArrays:
    """The graph's cached :class:`UniformArrays` (built on first use)."""
    return graph.cached(UNIFORM_KEY, build_uniform_arrays)


def sorted_segments(graph: CSRGraph) -> SortedSegments:
    """The graph's cached :class:`SortedSegments` (built on first use)."""
    return graph.cached(SEGMENTS_KEY, build_sorted_segments)


def lt_alias_tables(graph: CSRGraph) -> LTAliasTables:
    """The graph's cached :class:`LTAliasTables` (built on first use)."""
    return graph.cached(LT_ALIAS_KEY, build_lt_alias_tables)


def node_sampler_dict(graph: CSRGraph, general_mode: str) -> Dict[int, object]:
    """The shared lazily-filled per-node sampler dict for ``general_mode``.

    The ``"bucket"`` / ``"indexed"`` sequential paths build one
    :class:`~repro.sampling.bucket.BucketSampler` per visited skewed node;
    keying the dict on the graph lets every generator instance reuse the
    samplers earlier instances already built.
    """
    table: Dict[str, Dict[int, object]] = graph.cached(
        SAMPLER_DICT_KEY, lambda _g: {}
    )
    return table.setdefault(general_mode, {})


__all__: Tuple[str, ...] = (
    "LTAliasTables",
    "SortedSegments",
    "UniformArrays",
    "build_lt_alias_tables",
    "build_sorted_segments",
    "build_uniform_arrays",
    "lt_alias_tables",
    "node_sampler_dict",
    "sorted_segments",
    "uniform_arrays",
)
