"""Geometric-skip sampling: the equal-probability core of SUBSIM (Alg. 3).

For a Bernoulli(p) sequence, the index of the first success follows the
geometric distribution ``G(p)``; drawing it directly via the inverse CDF —
``ceil(log U / log(1 - p))`` for ``U ~ Uniform(0, 1)`` — lets the sampler jump
straight over failed trials instead of flipping one coin per element.  This
turns the cost of sampling the in-neighbors of a node from ``O(d_in)`` into
``O(1 + d_in * p)`` expected.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.utils.rng import random_unit

# Jump value meaning "past the end of any realistic element list".
_INFINITE_JUMP = 1 << 62


def geometric_jump(p: float, rng: np.random.Generator) -> int:
    """Draw from the geometric distribution ``G(p)`` (support 1, 2, ...).

    Returns the number of Bernoulli(p) trials up to and including the first
    success.  ``p >= 1`` always succeeds on the first trial; ``p <= 0`` never
    succeeds, encoded as a jump beyond any list length.
    """
    if p >= 1.0:
        return 1
    if p <= 0.0:
        return _INFINITE_JUMP
    log_one_minus_p = math.log1p(-p)
    if log_one_minus_p == 0.0:
        # p below ~1e-308 underflows log1p; success is unreachable anyway.
        return _INFINITE_JUMP
    u = random_unit(rng)
    # U in ((1-p)^i, (1-p)^{i-1}]  <=>  jump == i; floor + 1 realises that.
    ratio = math.log(u) / log_one_minus_p
    if ratio >= _INFINITE_JUMP:
        return _INFINITE_JUMP
    jump = int(ratio) + 1
    return jump if jump >= 1 else 1


def truncated_geometric(p: float, bound: int, rng: np.random.Generator) -> int:
    """Draw from ``G(p)`` conditioned on the value being at most ``bound``.

    Used by the bucket samplers when a bucket is already known to contain at
    least one success.  Requires ``p > 0`` and ``bound >= 1``.
    """
    if bound < 1:
        raise ValueError(f"bound must be >= 1, got {bound}")
    if p >= 1.0:
        return 1
    if p <= 0.0:
        raise ValueError("truncated geometric undefined for p <= 0")
    u = random_unit(rng)
    # Inverse CDF of the truncated distribution:
    #   F(i) = (1 - (1-p)^i) / (1 - (1-p)^bound)
    tail = math.expm1(bound * math.log1p(-p))  # (1-p)^bound - 1  (negative)
    value = int(math.log1p(u * tail) / math.log1p(-p)) + 1
    return min(max(value, 1), bound)


def sample_equal_probability(
    h: int, p: float, rng: np.random.Generator
) -> List[int]:
    """Sample a subset of ``{0, ..., h-1}`` where each index enters w.p. ``p``.

    Expected cost is ``O(1 + h * p)`` — one geometric draw per selected
    element plus one terminal draw — instead of the naive ``O(h)``.
    """
    if h < 0:
        raise ValueError(f"h must be non-negative, got {h}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    selected: List[int] = []
    if h == 0 or p == 0.0:
        return selected
    if p >= 1.0:
        return list(range(h))
    position = geometric_jump(p, rng) - 1
    while position < h:
        selected.append(position)
        position += geometric_jump(p, rng)
    return selected
