"""Bucket-based subset sampling for general probabilities (paper Sec. 3.3).

:class:`BucketSampler` implements the Bringmann–Panagiotou scheme [9]: group
elements by probability scale — bucket ``k`` holds ``p in (2^-(k+1), 2^-k]`` —
then, inside each bucket, run geometric skipping at the bucket ceiling
``q_k = 2^-k`` and accept each trial hit with probability ``p / q_k``.  Each
element is selected with probability exactly ``q_k * (p / q_k) = p``, and the
expected work is ``O(1 + mu + log h)`` (one visit per bucket plus at most
twice the selected mass).

:class:`IndexedBucketSampler` adds the paper's bucket-jump refinement: with
``p'_k = 1 - (1 - q_k)^{|B_k|}`` the probability bucket ``k`` receives at
least one trial hit, an ``L x L`` table of next-visited-bucket distributions
(one Walker alias row per bucket) lets the sampler jump directly between
visited buckets, removing the ``log h`` term for an expected ``O(1 + mu)``.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.sampling.alias import AliasTable
from repro.sampling.geometric import geometric_jump, truncated_geometric


class _Bucket:
    """One probability-scale bucket: ceiling q and member (index, prob) pairs."""

    __slots__ = ("q", "indices", "probs")

    def __init__(self, q: float, indices: np.ndarray, probs: np.ndarray) -> None:
        self.q = q
        self.indices = indices
        self.probs = probs

    def __len__(self) -> int:
        return len(self.indices)


def _build_buckets(probs: np.ndarray) -> List[_Bucket]:
    """Partition positive probabilities into power-of-two scale buckets."""
    h = len(probs)
    positive = probs > 0.0
    if not positive.any():
        return []
    idx = np.flatnonzero(positive)
    p = probs[idx]
    max_level = max(int(math.ceil(math.log2(h))), 0) if h > 1 else 0
    levels = np.floor(-np.log2(p)).astype(np.int64)
    levels = np.clip(levels, 0, max_level)
    buckets = []
    for k in np.unique(levels):
        members = levels == k
        buckets.append(_Bucket(2.0 ** (-int(k)), idx[members], p[members]))
    return buckets


class BucketSampler:
    """General-probability subset sampler with O(h) preprocessing.

    ``sample`` returns the list of selected element indices (bucket order,
    not globally sorted); each index ``i`` appears independently with
    probability ``probs[i]``.
    """

    def __init__(self, probs: Sequence[float]) -> None:
        probs = np.asarray(probs, dtype=np.float64)
        if probs.ndim != 1:
            raise ValueError("probs must be 1-D")
        if len(probs) and (probs.min() < 0.0 or probs.max() > 1.0):
            raise ValueError("probabilities must lie in [0, 1]")
        self._h = len(probs)
        self._buckets = _build_buckets(probs)
        self.mu = float(probs.sum())

    def __len__(self) -> int:
        return self._h

    def sample(self, rng: np.random.Generator) -> List[int]:
        """Draw one independent subset."""
        selected: List[int] = []
        for bucket in self._buckets:
            self._sample_bucket(bucket, rng, selected, first_jump=None)
        return selected

    @staticmethod
    def _sample_bucket(
        bucket: _Bucket,
        rng: np.random.Generator,
        out: List[int],
        first_jump,
    ) -> None:
        """Geometric-skip within one bucket, accepting hits w.p. p / q.

        ``first_jump`` overrides the first geometric draw (used by the
        indexed sampler, which conditions on at least one trial hit).
        """
        size = len(bucket)
        q = bucket.q
        if first_jump is None:
            first_jump = geometric_jump(q, rng)
        position = first_jump - 1
        while position < size:
            p = bucket.probs[position]
            if p >= q or rng.random() < p / q:
                out.append(int(bucket.indices[position]))
            position += geometric_jump(q, rng)


class IndexedBucketSampler(BucketSampler):
    """Bucket sampler with the O(1 + mu) bucket-jump refinement.

    Preprocessing builds, for every bucket position ``i`` (plus a virtual
    start position), the distribution of the *next* bucket that receives at
    least one trial hit — ``T[i, j] = p'_j * prod_{i<l<j}(1 - p'_l)`` — as a
    Walker alias row, so each jump costs O(1).
    """

    def __init__(self, probs: Sequence[float]) -> None:
        super().__init__(probs)
        L = len(self._buckets)
        self._visit_probs = np.array(
            [-math.expm1(len(b) * math.log1p(-b.q)) if b.q < 1.0 else 1.0
             for b in self._buckets],
            dtype=np.float64,
        )
        # Row i (for i = -1 .. L-1) covers outcomes j = i+1 .. L-1 plus a
        # terminal "stop" outcome; stored as alias tables.
        self._rows: List[AliasTable] = []
        for i in range(-1, L):
            weights = []
            survive = 1.0
            for j in range(i + 1, L):
                weights.append(survive * self._visit_probs[j])
                survive *= 1.0 - self._visit_probs[j]
            weights.append(survive)  # terminal outcome
            self._rows.append(AliasTable(weights))

    def sample(self, rng: np.random.Generator) -> List[int]:
        selected: List[int] = []
        L = len(self._buckets)
        current = -1
        while current < L:
            row = self._rows[current + 1]
            offset = row.sample(rng)
            nxt = current + 1 + offset
            if nxt >= L:  # terminal outcome drawn
                break
            bucket = self._buckets[nxt]
            first = (
                1
                if bucket.q >= 1.0
                else truncated_geometric(bucket.q, len(bucket), rng)
            )
            self._sample_bucket(bucket, rng, selected, first_jump=first)
            current = nxt
        return selected
