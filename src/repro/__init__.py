"""repro — SUBSIM + HIST: efficient RR-set generation for influence maximization.

A from-scratch Python implementation of Guo, Wang, Wei & Chen, *"Influence
Maximization Revisited: Efficient Reverse Reachable Set Generation with
Bound Tightened"* (SIGMOD 2020), including every baseline the paper
evaluates against (IMM, TIM+, SSA, OPIM-C) and the full experiment harness.

Quickstart::

    from repro import InfluenceMaximizer, preferential_attachment, wc_weights

    graph = wc_weights(preferential_attachment(5000, 4, seed=1))
    result = InfluenceMaximizer(graph).maximize(k=20, algorithm="hist+subsim")
    print(result.seeds, result.runtime_seconds)
"""

from repro.core.api import InfluenceMaximizer, maximize_influence
from repro.core.registry import (
    available_algorithms,
    get_algorithm,
    register_algorithm,
)
from repro.core.results import IMResult
from repro.engine.schedule import SamplingSchedule
from repro.engine.session import QuerySession
from repro.estimation.montecarlo import estimate_spread
from repro.graphs.csr import CSRGraph, build_graph
from repro.graphs.dynamic import GraphDelta
from repro.graphs.generators import (
    erdos_renyi,
    preferential_attachment,
    stochastic_block_model,
    watts_strogatz,
)
from repro.graphs.io import (
    load_edge_list,
    load_edge_list_with_retry,
    load_graph_auto,
    load_npz,
    load_npz_with_retry,
    save_edge_list,
    save_npz,
)
from repro.graphs.weights import (
    exponential_weights,
    lt_normalized_weights,
    trivalency_weights,
    uniform_weights,
    wc_variant_weights,
    wc_weights,
    weibull_weights,
)
from repro.observability import (
    HistogramSketch,
    MetricsRegistry,
    PhaseTracer,
    RunReport,
    build_run_report,
)
from repro.rrsets.bank import RRBank
from repro.rrsets.collection import RRCollection
from repro.rrsets.lt import LTGenerator
from repro.rrsets.subsim import SubsimICGenerator
from repro.rrsets.vanilla import VanillaICGenerator
from repro.runtime import (
    Budget,
    CancellationToken,
    CheckpointStore,
    FaultInjector,
)

__version__ = "1.0.0"

__all__ = [
    "Budget",
    "CancellationToken",
    "CheckpointStore",
    "CSRGraph",
    "FaultInjector",
    "HistogramSketch",
    "IMResult",
    "InfluenceMaximizer",
    "LTGenerator",
    "MetricsRegistry",
    "PhaseTracer",
    "QuerySession",
    "RRBank",
    "RRCollection",
    "RunReport",
    "SamplingSchedule",
    "SubsimICGenerator",
    "VanillaICGenerator",
    "__version__",
    "available_algorithms",
    "build_graph",
    "build_run_report",
    "erdos_renyi",
    "estimate_spread",
    "exponential_weights",
    "get_algorithm",
    "load_edge_list",
    "load_edge_list_with_retry",
    "load_graph_auto",
    "load_npz",
    "load_npz_with_retry",
    "lt_normalized_weights",
    "maximize_influence",
    "preferential_attachment",
    "register_algorithm",
    "save_edge_list",
    "save_npz",
    "stochastic_block_model",
    "trivalency_weights",
    "uniform_weights",
    "watts_strogatz",
    "wc_variant_weights",
    "wc_weights",
    "weibull_weights",
]
