"""Nestable phase spans emitting a structured JSON trace.

A :class:`PhaseTracer` turns ``with tracer.phase("sentinel"):`` blocks into
a tree of spans.  Each span records

* wall-clock seconds,
* the *counter deltas* accrued inside it — the difference between the
  attached registry's totals at exit and at entry, so generator work done
  by nested code is attributed to every enclosing span,
* the ``rr_pool_bytes`` gauge at exit (RR-pool memory high-water as of the
  span's end).

Spans nest arbitrarily; a child's wall time is part of its parent's, and a
parent's counter deltas are the sum of its children's plus whatever it did
itself — the invariant ``tests/test_observability.py`` pins down.

:data:`NULL_TRACER` is a singleton whose ``phase()`` returns a reusable
no-op context manager, so instrumented code never branches on "is tracing
on" — the off path costs two trivial method calls per *phase*, not per
edge.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional

from repro.observability.registry import MetricsRegistry


class PhaseSpan:
    """One node of the phase tree."""

    __slots__ = (
        "name",
        "wall_seconds",
        "counter_deltas",
        "rr_pool_bytes",
        "annotations",
        "children",
        "_started_at",
        "_counters_at_entry",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.wall_seconds = 0.0
        self.counter_deltas: Dict[str, int] = {}
        self.rr_pool_bytes = 0.0
        #: caller-supplied span facts (round theta, bound ratio, overlap
        #: seconds, ...) — emitted verbatim under ``"annotations"``.
        self.annotations: Dict[str, Any] = {}
        self.children: List["PhaseSpan"] = []
        self._started_at = 0.0
        self._counters_at_entry: Dict[str, int] = {}

    def annotate(self, **facts: Any) -> None:
        """Attach structured facts to this span (merged, last write wins)."""
        self.annotations.update(facts)

    def as_dict(self) -> Dict[str, Any]:
        payload = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "counters": dict(self.counter_deltas),
            "rr_pool_bytes": self.rr_pool_bytes,
            "children": [child.as_dict() for child in self.children],
        }
        if self.annotations:
            payload["annotations"] = dict(self.annotations)
        return payload


class _SpanContext:
    """Context manager driving one span's enter/exit bookkeeping."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "PhaseTracer", span: PhaseSpan) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> PhaseSpan:
        self._tracer._enter(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._exit(self._span)


class PhaseTracer:
    """Builds the span tree; optionally attributes registry counter deltas."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.metrics = metrics
        self._clock = clock
        self.roots: List[PhaseSpan] = []
        self._stack: List[PhaseSpan] = []

    # ------------------------------------------------------------------
    def phase(self, name: str) -> _SpanContext:
        """Open a span named ``name`` nested under the current span."""
        return _SpanContext(self, PhaseSpan(name))

    def _totals(self) -> Dict[str, int]:
        if self.metrics is None:
            return {}
        return self.metrics.counter_totals()

    def _enter(self, span: PhaseSpan) -> None:
        span._started_at = self._clock()
        span._counters_at_entry = self._totals()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _exit(self, span: PhaseSpan) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(f"phase {span.name!r} exited out of nesting order")
        self._stack.pop()
        span.wall_seconds = self._clock() - span._started_at
        exit_totals = self._totals()
        span.counter_deltas = {
            name: delta
            for name, total in exit_totals.items()
            if (delta := total - span._counters_at_entry.get(name, 0)) != 0
        }
        if self.metrics is not None:
            span.rr_pool_bytes = self.metrics.gauge("rr_pool_bytes")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The finished trace as a JSON-able phase tree."""
        if self._stack:
            raise RuntimeError(
                f"cannot serialize a trace with open spans: "
                f"{[span.name for span in self._stack]}"
            )
        return {"phases": [span.as_dict() for span in self.roots]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class _NullSpanContext:
    """Reusable no-op span; allocation-free on every use."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class NullTracer:
    """Tracer stand-in used when tracing is off: every phase is a no-op."""

    __slots__ = ()

    _SPAN = _NullSpanContext()

    def phase(self, name: str) -> _NullSpanContext:
        return self._SPAN

    def to_dict(self) -> Dict[str, Any]:
        return {"phases": []}


#: shared no-op tracer: attach-nothing default for every RunControl
NULL_TRACER = NullTracer()
