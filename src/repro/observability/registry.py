"""Metrics registry: counters, gauges, and deterministic histogram sketches.

The registry is the single aggregation point for a run's machine-independent
spend.  Two kinds of data flow into it:

* **Own metrics** — pushed explicitly (``inc`` / ``set_gauge`` / ``observe``)
  by instrumented code: runtime budget tallies, checkpoint saves, RR-size
  histograms, fan-out batch counts.
* **Sources** — live :class:`~repro.rrsets.base.GenerationCounters` owners
  (generators, or the counter shims a checkpoint resume restores) attached
  with :meth:`attach_source`.  Their plain-int fields stay the storage the
  hot loops bump; the registry reads them *at snapshot time* under
  ``generation.*`` names, so attaching a registry adds zero per-edge work.

Everything is mergeable by addition (histograms bucket-wise, gauges by
``max``), which makes merging child-process payloads commutative — the
property the fan-out's rank-order merge point and its tests rely on.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

#: registry names of the per-generator counter fields (see
#: :class:`~repro.rrsets.base.GenerationCounters`)
GENERATION_COUNTER_FIELDS = (
    "edges_examined",
    "rng_draws",
    "nodes_added",
    "sets_generated",
    "sentinel_hits",
)


class HistogramSketch:
    """Power-of-two bucketed histogram of non-negative integers.

    Bucket ``0`` counts exact zeros; bucket ``b >= 1`` counts values in
    ``[2**(b-1), 2**b)`` — i.e. the bucket index is the value's bit length.
    The bucketing is a pure function of the value, so two sketches built
    from the same multiset are identical regardless of observation order or
    process boundaries, and merging is bucket-wise addition.  ``total`` and
    ``sum`` are tracked exactly, so the mean survives sketching.
    """

    __slots__ = ("counts", "total", "sum")

    def __init__(self) -> None:
        self.counts: List[int] = []
        self.total = 0
        self.sum = 0

    def _ensure(self, bucket: int) -> None:
        if bucket >= len(self.counts):
            self.counts.extend([0] * (bucket + 1 - len(self.counts)))

    def observe(self, value: int) -> None:
        """Record one value (non-negative integer)."""
        value = int(value)
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        bucket = value.bit_length()
        self._ensure(bucket)
        self.counts[bucket] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: np.ndarray) -> None:
        """Record an array of values with one vectorized pass."""
        values = np.asarray(values)
        if len(values) == 0:
            return
        if values.min() < 0:
            raise ValueError("histogram values must be >= 0")
        # frexp writes v = m * 2**e with m in [0.5, 1), so e is exactly the
        # bit length for every integer a float64 represents exactly (far
        # beyond any RR-set size); zeros get e = 0, which is bucket 0.
        _, exponents = np.frexp(values.astype(np.float64))
        fold = np.bincount(exponents.astype(np.int64))
        self._ensure(len(fold) - 1)
        for bucket, count in enumerate(fold):
            self.counts[bucket] += int(count)
        self.total += len(values)
        self.sum += int(values.sum())

    def merge(self, other: "HistogramSketch") -> None:
        """Fold another sketch in (bucket-wise addition; commutative)."""
        if other.counts:
            self._ensure(len(other.counts) - 1)
        for bucket, count in enumerate(other.counts):
            self.counts[bucket] += count
        self.total += other.total
        self.sum += other.sum

    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able payload; buckets are trimmed of trailing zeros."""
        counts = list(self.counts)
        while counts and counts[-1] == 0:
            counts.pop()
        return {"counts": counts, "total": self.total, "sum": self.sum}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HistogramSketch":
        sketch = cls()
        sketch.counts = [int(c) for c in payload.get("counts", [])]
        sketch.total = int(payload.get("total", 0))
        sketch.sum = int(payload.get("sum", 0))
        return sketch

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistogramSketch):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HistogramSketch(total={self.total}, sum={self.sum}, "
            f"buckets={len(self.counts)})"
        )


class MetricsRegistry:
    """Aggregation point for one run's counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramSketch] = {}
        self._sources: List[Any] = []

    # ------------------------------------------------------------------
    # own metrics
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Bump a monotonic counter."""
        self._counters[name] = self._counters.get(name, 0) + int(amount)

    def value(self, name: str) -> int:
        """Current value of an own counter (0 if never bumped)."""
        return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        """Record a point-in-time measurement (last write wins)."""
        self._gauges[name] = float(value)

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def histogram(self, name: str) -> HistogramSketch:
        """The named sketch, created on first use."""
        sketch = self._histograms.get(name)
        if sketch is None:
            sketch = self._histograms[name] = HistogramSketch()
        return sketch

    def observe(self, name: str, value: int) -> None:
        self.histogram(name).observe(value)

    def observe_many(self, name: str, values: np.ndarray) -> None:
        self.histogram(name).observe_many(values)

    # ------------------------------------------------------------------
    # live sources
    # ------------------------------------------------------------------
    def attach_source(self, owner: Any) -> None:
        """Track a live counters owner (anything with a ``counters`` attr).

        Idempotent per object: attaching the same owner twice counts once.
        Sources are read at snapshot time, so restoring ``owner.counters``
        from a checkpoint after attachment is safe.
        """
        if not hasattr(owner, "counters"):
            raise TypeError(
                f"source {type(owner).__name__} has no 'counters' attribute"
            )
        if not any(existing is owner for existing in self._sources):
            self._sources.append(owner)

    def generation_totals(self) -> Dict[str, int]:
        """Summed generator counters across every attached source."""
        totals = dict.fromkeys(GENERATION_COUNTER_FIELDS, 0)
        for owner in self._sources:
            counters = owner.counters
            for field in GENERATION_COUNTER_FIELDS:
                # int() guards against numpy scalars the vectorized loops
                # accumulate — snapshots must stay JSON-able.
                totals[field] += int(getattr(counters, field))
        return totals

    # ------------------------------------------------------------------
    # snapshots and merging
    # ------------------------------------------------------------------
    def counter_totals(self) -> Dict[str, int]:
        """Own counters plus ``generation.*`` source aggregates, sorted."""
        merged = dict(self._counters)
        for field, value in self.generation_totals().items():
            key = f"generation.{field}"
            merged[key] = merged.get(key, 0) + value
        return {name: merged[name] for name in sorted(merged)}

    def snapshot(self) -> Dict[str, Any]:
        """Full JSON-able state: counters, gauges, histograms."""
        return {
            "counters": self.counter_totals(),
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }

    def merge_snapshot(self, payload: Dict[str, Any]) -> None:
        """Fold a serialized snapshot in (commutative, order-independent).

        Counters and histograms add; gauges take the maximum, so merging
        worker payloads in any rank order produces the same registry.
        """
        for name, value in payload.get("counters", {}).items():
            self.inc(name, value)
        for name, value in payload.get("gauges", {}).items():
            current = self._gauges.get(name)
            self._gauges[name] = (
                float(value) if current is None else max(current, float(value))
            )
        for name, sketch_payload in payload.get("histograms", {}).items():
            self.histogram(name).merge(HistogramSketch.from_dict(sketch_payload))

    def merge_snapshots(self, payloads: Iterable[Dict[str, Any]]) -> None:
        for payload in payloads:
            self.merge_snapshot(payload)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def own_state(self) -> Dict[str, Any]:
        """Checkpointable *pushed* state: own counters and histograms.

        Source aggregates are excluded (generator counters are persisted
        alongside their pools and re-attached on resume) and gauges are
        excluded (point-in-time readings, not spend).
        """
        return {
            "counters": {
                name: self._counters[name] for name in sorted(self._counters)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }

    def restore_own_state(
        self, payload: Dict[str, Any], skip_prefixes: tuple = ()
    ) -> None:
        """Overwrite own counters/histograms from an ``own_state`` payload.

        ``skip_prefixes`` lets the caller keep selected namespaces at their
        live values (the runtime budget tallies restart at zero on resume —
        budgets are per-process by design).
        """
        for name, value in payload.get("counters", {}).items():
            if skip_prefixes and name.startswith(skip_prefixes):
                continue
            self._counters[name] = int(value)
        for name, sketch in payload.get("histograms", {}).items():
            self._histograms[name] = HistogramSketch.from_dict(sketch)


def maybe_observe_sizes(metrics: Optional[MetricsRegistry], sizes: np.ndarray) -> None:
    """Record a batch of RR-set sizes when a sink is attached (else no-op)."""
    if metrics is not None:
        metrics.observe_many("rr_size", sizes)
