"""First-class instrumentation: metrics registry, phase tracing, run reports.

The repro's whole cost-model argument rests on machine-independent counters
(``edges_examined``, ``rng_draws``) standing in for the paper's wall-clock
claims.  This package turns those ad-hoc fields into an observable surface
that CI can enforce:

* :class:`MetricsRegistry` — monotonic counters, gauges, and deterministic
  :class:`HistogramSketch` es (RR-set sizes), aggregating live generator
  counters as *sources* so the hot loops keep their plain-int bumps;
* :class:`PhaseTracer` — nestable ``phase()`` spans emitting a structured
  JSON trace: a phase tree with wall time, counter deltas, and RR-pool
  memory per span;
* :class:`RunReport` — the per-run artifact every registered algorithm can
  write: graph fingerprint, config, seed, counters, histograms, budget
  spend, and certificate.  Its :meth:`~RunReport.canonical` projection
  drops wall-clock fields, leaving exactly the deterministic payload the
  CI counter-regression baseline diffs.

When no sink is attached the instrumented code paths reduce to a ``None``
check (sequential generation) or a no-op span (phase boundaries) — the
default path pays nothing measurable.
"""

from repro.observability.registry import HistogramSketch, MetricsRegistry
from repro.observability.trace import NULL_TRACER, PhaseTracer

__all__ = [
    "HistogramSketch",
    "MetricsRegistry",
    "NULL_TRACER",
    "PhaseTracer",
    "RunReport",
    "build_run_report",
]


def __getattr__(name):
    # Lazy: report.py pulls in the core result types, which import the
    # runtime, which imports the registry above — resolving RunReport on
    # first use instead of at package import keeps that loop open.
    if name in ("RunReport", "build_run_report"):
        from repro.observability import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
