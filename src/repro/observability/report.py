"""Run reports: the per-run artifact the CI counter baseline diffs.

A :class:`RunReport` captures everything needed to reproduce and audit one
algorithm run: the graph fingerprint, the query configuration and seed, the
registry's counter/gauge/histogram snapshot, the budget spend, the
certificate (bounds and certified ratio), and optionally the phase trace.

Two projections matter:

* :meth:`RunReport.as_dict` / :meth:`RunReport.to_json` — the full
  artifact, including wall-clock fields;
* :meth:`RunReport.canonical` — the deterministic subset (no wall times,
  no memory gauges, no phase tree), which is **bit-identical** across
  reruns of the same ``(code, graph, config, seed)`` — including runs
  resumed from a checkpoint — and is therefore what the counter-regression
  baseline stores and compares.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.results import IMResult
from repro.graphs.csr import CSRGraph
from repro.observability.registry import MetricsRegistry

SCHEMA_VERSION = 1

#: gauge names excluded from the canonical projection (buffer growth, and
#: hence resident bytes, legitimately differs between a fresh run and a
#: checkpoint-resumed one rebuilding its pools in a single append; pipeline
#: overlap is pure wall clock)
_NONDETERMINISTIC_GAUGES = ("rr_pool_bytes", "pipeline_overlap_seconds")

#: counter namespaces excluded from the canonical projection: the runtime
#: budget tallies are *per-process* spend (they restart at zero when a run
#: resumes from a checkpoint) and duplicate the ``generation.*`` totals
_PROCESS_LOCAL_COUNTER_PREFIXES = ("runtime.",)

#: per-round annotation keys dropped from the canonical projection (wall
#: clock; everything else in a round record — theta, bounds, bound ratio —
#: is deterministic and stays)
_NONDETERMINISTIC_ROUND_KEYS = ("overlap_seconds",)


def _round_records(trace: Optional[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Lift the doubling loop's per-round span annotations out of a trace.

    Walks the phase tree for ``round-{i}`` spans carrying annotations
    (theta, lower/upper bounds, bound ratio, pipeline overlap) and returns
    them as an ordered list of ``{"round": i, ...}`` records — the
    round-by-round story ``--report`` surfaces without forcing readers to
    dig through the span tree.
    """
    records: List[Dict[str, Any]] = []
    if not trace:
        return records

    def walk(span: Dict[str, Any]) -> None:
        name = span.get("name", "")
        annotations = span.get("annotations")
        if annotations and name.startswith("round-"):
            try:
                index = int(name[len("round-"):])
            except ValueError:
                index = len(records) + 1
            records.append({"round": index, **annotations})
        for child in span.get("children", ()):
            walk(child)

    for root in trace.get("phases", ()):
        walk(root)
    records.sort(key=lambda record: record["round"])
    return records


@dataclass
class RunReport:
    """Structured record of one influence-maximization run."""

    algorithm: str
    graph: Dict[str, Any]
    config: Dict[str, Any]
    seeds: List[int]
    status: str
    stop_reason: Optional[str]
    certificate: Dict[str, Any]
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Any] = field(default_factory=dict)
    budget: Dict[str, Any] = field(default_factory=dict)
    phases: Dict[str, Any] = field(default_factory=dict)
    rounds: List[Dict[str, Any]] = field(default_factory=list)
    runtime_seconds: float = 0.0
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def canonical(self) -> Dict[str, Any]:
        """The deterministic projection the counter baseline compares.

        Drops every wall-clock quantity (``runtime_seconds``, the phase
        tree, the budget's elapsed and spend fields), memory gauges, and
        the per-process ``runtime.*`` tallies; keeps the deterministic
        counters, histograms, seeds, config, fingerprint, and certificate.
        """
        budget = {"limits": dict(self.budget.get("limits", {}))}
        gauges = {
            name: value
            for name, value in self.gauges.items()
            if name not in _NONDETERMINISTIC_GAUGES
        }
        counters = {
            name: value
            for name, value in self.counters.items()
            if not name.startswith(_PROCESS_LOCAL_COUNTER_PREFIXES)
        }
        payload = {
            "schema_version": self.schema_version,
            "algorithm": self.algorithm,
            "graph": dict(self.graph),
            "config": dict(self.config),
            "seeds": list(self.seeds),
            "status": self.status,
            "stop_reason": self.stop_reason,
            "certificate": dict(self.certificate),
            "counters": counters,
            "gauges": gauges,
            "histograms": {
                name: dict(payload) for name, payload in self.histograms.items()
            },
            "budget": budget,
        }
        if self.rounds:
            # Only present on traced runs (the baseline workloads run
            # untraced, so the committed baseline document is unchanged);
            # wall-clock overlap is stripped — theta/bounds/ratio remain.
            payload["rounds"] = [
                {
                    key: value
                    for key, value in record.items()
                    if key not in _NONDETERMINISTIC_ROUND_KEYS
                }
                for record in self.rounds
            ]
        return payload

    # ------------------------------------------------------------------
    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunReport":
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in payload.items() if key in known})

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def write(self, path: os.PathLike) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: os.PathLike) -> "RunReport":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def _opt_int(value: Any) -> Optional[int]:
    return None if value is None else int(value)


def _opt_float(value: Any) -> Optional[float]:
    return None if value is None else float(value)


def graph_descriptor(graph: CSRGraph) -> Dict[str, Any]:
    """The graph identity block every report carries."""
    return {
        "n": int(graph.n),
        "m": int(graph.m),
        "weight_model": graph.weight_model,
        "fingerprint": graph.fingerprint(),
    }


def build_run_report(
    result: IMResult,
    graph: CSRGraph,
    seed: Any = None,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[Dict[str, Any]] = None,
    config: Optional[Dict[str, Any]] = None,
) -> RunReport:
    """Assemble a :class:`RunReport` from a finished run.

    ``metrics`` supplies the counter/gauge/histogram snapshot; without one,
    the report still carries the result's own counter fields (under the
    same ``generation.*`` names the registry would use), so every
    registered algorithm can write a report even when it ran uninstrumented.
    """
    if metrics is not None:
        snapshot = metrics.snapshot()
    else:
        snapshot = {
            "counters": {
                "generation.edges_examined": result.edges_examined,
                "generation.rng_draws": result.rng_draws,
                "generation.sets_generated": result.num_rr_sets,
            },
            "gauges": {},
            "histograms": {},
        }
    runtime = result.extras.get("runtime", {})
    # The fallbacks read IMResult counter fields, which vectorized loops may
    # have left as numpy scalars — coerce everything JSON-bound.
    budget = {
        "edges_examined": int(
            runtime.get("edges_examined", result.edges_examined)
        ),
        "rr_sets": int(runtime.get("rr_sets", result.num_rr_sets)),
        "rr_nodes": _opt_int(runtime.get("rr_nodes")),
        "elapsed_seconds": float(
            runtime.get("elapsed_seconds", result.runtime_seconds)
        ),
        # None means "unlimited"; dropping those keys makes the limits block
        # identical whether or not the run carried a runtime snapshot.
        "limits": {
            key: value
            for key, value in runtime.get("budget", {}).items()
            if value is not None
        },
    }
    report_config = {
        "k": int(result.k),
        "eps": _opt_float(result.eps),
        "delta": _opt_float(result.delta),
        "seed": seed if isinstance(seed, (int, type(None))) else repr(seed),
    }
    if config:
        report_config.update(config)
    return RunReport(
        algorithm=result.algorithm,
        graph=graph_descriptor(graph),
        config=report_config,
        seeds=[int(s) for s in result.seeds],
        status=result.status,
        stop_reason=result.stop_reason,
        certificate={
            "lower_bound": _opt_float(result.lower_bound),
            "upper_bound": _opt_float(result.upper_bound),
            "certified_ratio": _opt_float(result.approx_ratio_certified),
        },
        counters=snapshot["counters"],
        gauges=snapshot["gauges"],
        histograms=snapshot["histograms"],
        budget=budget,
        phases=trace if trace is not None else {},
        rounds=_round_records(trace),
        runtime_seconds=result.runtime_seconds,
    )
