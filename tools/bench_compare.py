"""Compare fresh full-size benchmark results against committed baselines.

The nightly ``bench-full`` workflow re-runs every benchmark at full size
and calls this script to diff the fresh headline metrics against the JSON
files committed under ``benchmarks/results/``.  A headline metric that
regresses by more than the threshold (default 25%) fails the run, unless
the triggering commit message carries a ``[bench-waiver]`` marker — the
escape hatch for intentional trade-offs, which still prints the full
comparison so the regression is reviewed, not hidden.

Headline metrics are ratios (speedups, reductions), so they are *less*
noisy than raw wall-clock on shared runners, but noise is still real:
the threshold is deliberately loose and this gate runs nightly, not on
every push.

Usage::

    python tools/bench_compare.py --current-dir fresh-results \
        [--baseline-dir benchmarks/results] [--threshold 0.25] \
        [--commit-message "$(git log -1 --pretty=%B)"]

Missing files are tolerated on both sides (not every benchmark commits a
full-size baseline); each skip is reported so silent coverage loss shows
up in the log.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterator, List, Optional, Tuple

#: commit-message marker that downgrades regressions to warnings
WAIVER_MARKER = "[bench-waiver]"

#: per-file headline metrics: (file, dotted path, direction).  A ``*``
#: path segment fans out over every key at that level (e.g. one entry per
#: general-weight workload).  Direction ``higher`` means bigger is better.
HEADLINES: List[Tuple[str, str, str]] = [
    ("BENCH_rrgen.json", "speedup", "higher"),
    ("BENCH_generalw.json", "workloads.*.batched_speedup", "higher"),
    ("BENCH_session.json", "second_query_reduction", "higher"),
    ("BENCH_serving.json", "warm_speedup", "higher"),
    ("BENCH_sharded.json", "warm_vs_fanout.speedup", "higher"),
    ("BENCH_dynamic.json", "repair_speedup", "higher"),
    ("BENCH_sketch.json", "memory_reduction", "higher"),
    ("BENCH_pipeline.json", "hard_query.speedup", "higher"),
]


def resolve_path(doc: Any, dotted: str) -> Iterator[Tuple[str, float]]:
    """Yield ``(concrete_path, value)`` for a dotted path, expanding ``*``."""
    parts = dotted.split(".")

    def walk(node: Any, idx: int, trail: List[str]) -> Iterator[Tuple[str, float]]:
        if idx == len(parts):
            if isinstance(node, (int, float)) and not isinstance(node, bool):
                yield ".".join(trail), float(node)
            return
        part = parts[idx]
        if part == "*":
            if isinstance(node, dict):
                for key in sorted(node):
                    yield from walk(node[key], idx + 1, trail + [key])
        elif isinstance(node, dict) and part in node:
            yield from walk(node[part], idx + 1, trail + [part])

    yield from walk(doc, 0, [])


def compare_dirs(
    baseline_dir: Path, current_dir: Path, threshold: float
) -> Tuple[List[str], List[str]]:
    """Returns ``(regressions, notes)`` comparing every headline metric."""
    regressions: List[str] = []
    notes: List[str] = []
    for filename, dotted, direction in HEADLINES:
        base_file = baseline_dir / filename
        cur_file = current_dir / filename
        if not base_file.exists():
            notes.append(f"{filename}: no committed baseline, skipped")
            continue
        if not cur_file.exists():
            notes.append(f"{filename}: not produced by this run, skipped")
            continue
        base_doc = json.loads(base_file.read_text())
        cur_doc = json.loads(cur_file.read_text())
        base_values = dict(resolve_path(base_doc, dotted))
        cur_values = dict(resolve_path(cur_doc, dotted))
        if not base_values:
            notes.append(f"{filename}: baseline lacks {dotted!r}, skipped")
            continue
        for path, base in sorted(base_values.items()):
            cur = cur_values.get(path)
            if cur is None:
                regressions.append(
                    f"{filename}: {path}: present in baseline "
                    f"({base:.4g}) but missing from this run"
                )
                continue
            if direction == "higher":
                regressed = cur < base * (1.0 - threshold)
            else:
                regressed = cur > base * (1.0 + threshold)
            ratio = cur / base if base else float("inf")
            line = (
                f"{filename}: {path}: baseline {base:.4g} -> current "
                f"{cur:.4g} ({ratio:.2f}x)"
            )
            if regressed:
                regressions.append(line + f"  [>{threshold:.0%} regression]")
            else:
                notes.append(line)
    return regressions, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path(__file__).resolve().parents[1]
        / "benchmarks"
        / "results",
    )
    parser.add_argument("--current-dir", type=Path, required=True)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed relative regression of a headline metric",
    )
    parser.add_argument(
        "--commit-message",
        default="",
        help=f"triggering commit message; {WAIVER_MARKER!r} waives failure",
    )
    args = parser.parse_args(argv)

    regressions, notes = compare_dirs(
        args.baseline_dir, args.current_dir, args.threshold
    )
    for line in notes:
        print(f"  ok    {line}")
    for line in regressions:
        print(f"  FAIL  {line}")
    if not regressions:
        print("bench-compare: all headline metrics within threshold")
        return 0
    if WAIVER_MARKER in args.commit_message:
        print(
            f"bench-compare: {len(regressions)} regression(s) WAIVED by "
            f"{WAIVER_MARKER} in the commit message"
        )
        return 0
    print(
        f"bench-compare: {len(regressions)} headline metric(s) regressed "
        f"more than {args.threshold:.0%}"
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
